// Package artifact implements the "shipped with the program binary"
// packaging of tradeoff curves. §3.5 of the paper: because FP16 hardware
// availability is unknown at development time, tuning produces two
// separate curves — one FP32-only and one with FP16 variants — and the
// install-time phase picks the curve matching the device's capabilities.
// A Bundle carries both curves plus versioning metadata and an integrity
// checksum, and selects the right curve for a device.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pareto"
	"repro/internal/tensorops"
)

// FormatVersion is bumped on wire-format changes.
const FormatVersion = 1

// Bundle is the tuning artifact shipped alongside an application binary.
type Bundle struct {
	Version int    `json:"version"`
	Program string `json:"program"`
	// FP32 is the curve over FP32-precision knobs only; FP16 additionally
	// uses half-precision knob variants. FP16 may be nil when the
	// developer knows the fleet has no half-precision hardware.
	FP32 *pareto.Curve `json:"fp32"`
	FP16 *pareto.Curve `json:"fp16,omitempty"`
	// Checksum covers the curves (hex SHA-256); verified on load.
	Checksum string `json:"checksum"`
}

// New assembles a bundle from the development-time curves.
func New(program string, fp32, fp16 *pareto.Curve) (*Bundle, error) {
	if fp32 == nil || fp32.Len() == 0 {
		return nil, fmt.Errorf("artifact: an FP32 curve is required (it is the universal fallback)")
	}
	if err := checkPrecision(fp32, false); err != nil {
		return nil, err
	}
	if fp16 != nil {
		if err := checkPrecision(fp16, true); err != nil {
			return nil, err
		}
	}
	b := &Bundle{Version: FormatVersion, Program: program, FP32: fp32, FP16: fp16}
	sum, err := b.computeChecksum()
	if err != nil {
		return nil, err
	}
	b.Checksum = sum
	return b, nil
}

// checkPrecision rejects curves whose knob precisions contradict their
// slot: the FP32 curve must be runnable on devices without FP16 hardware.
func checkPrecision(c *pareto.Curve, allowFP16 bool) error {
	for _, pt := range c.Points {
		for op, kid := range pt.Config {
			k, ok := approx.Lookup(kid)
			if !ok {
				return fmt.Errorf("artifact: unknown knob %d on op %d", kid, op)
			}
			if !allowFP16 && k.Prec == tensorops.FP16 {
				return fmt.Errorf("artifact: FP16 knob %s in the FP32-only curve (op %d)", k.Name(), op)
			}
		}
	}
	return nil
}

func (b *Bundle) computeChecksum() (string, error) {
	payload := struct {
		FP32 *pareto.Curve `json:"fp32"`
		FP16 *pareto.Curve `json:"fp16,omitempty"`
	}{b.FP32, b.FP16}
	data, err := json.Marshal(payload)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Select returns the curve matching a device's capabilities: the FP16
// curve when the device supports half precision and the bundle carries
// one, the FP32 curve otherwise.
func (b *Bundle) Select(d *device.Device) *pareto.Curve {
	if b.FP16 != nil && d.SupportsKnob(approx.KnobFP16) {
		return b.FP16
	}
	return b.FP32
}

// Marshal serializes the bundle.
func (b *Bundle) Marshal() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// Load parses and verifies a bundle.
func Load(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("artifact: bad bundle: %w", err)
	}
	if b.Version != FormatVersion {
		return nil, fmt.Errorf("artifact: unsupported format version %d (want %d)", b.Version, FormatVersion)
	}
	if b.FP32 == nil {
		return nil, fmt.Errorf("artifact: bundle lacks the FP32 curve")
	}
	sum, err := b.computeChecksum()
	if err != nil {
		return nil, err
	}
	if sum != b.Checksum {
		return nil, fmt.Errorf("artifact: checksum mismatch (corrupted or tampered bundle)")
	}
	if err := checkPrecision(b.FP32, false); err != nil {
		return nil, err
	}
	if b.FP16 != nil {
		if err := checkPrecision(b.FP16, true); err != nil {
			return nil, err
		}
	}
	// Domain-level curve validation (relaxed mode: shipped development
	// curves deliberately keep near-Pareto dominated points, §2.2).
	for _, cv := range []*pareto.Curve{b.FP32, b.FP16} {
		if cv == nil {
			continue
		}
		if errs := core.CheckCurve(cv, false); len(errs) > 0 {
			return nil, fmt.Errorf("artifact: curve %q failed validation: %w", cv.Program, errors.Join(errs...))
		}
	}
	return &b, nil
}
