package artifact

import (
	"strings"
	"testing"

	"repro/internal/approx"
	"repro/internal/device"
	"repro/internal/pareto"
	"repro/internal/tensorops"
)

func fp32Curve() *pareto.Curve {
	return pareto.NewCurve("bench", 90, []pareto.Point{
		{QoS: 90, Perf: 1, Config: approx.Config{}},
		{QoS: 88, Perf: 1.6, Config: approx.Config{1: approx.SamplingKnob(2, 0, tensorops.FP32)}},
	})
}

func fp16Curve() *pareto.Curve {
	return pareto.NewCurve("bench", 90, []pareto.Point{
		{QoS: 90, Perf: 1.5, Config: approx.Config{1: approx.KnobFP16}},
		{QoS: 87, Perf: 2.4, Config: approx.Config{1: approx.SamplingKnob(2, 0, tensorops.FP16)}},
	})
}

func TestBundleRoundTrip(t *testing.T) {
	b, err := New("bench", fp32Curve(), fp16Curve())
	if err != nil {
		t.Fatal(err)
	}
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Program != "bench" || back.FP32.Len() != 2 || back.FP16.Len() != 2 {
		t.Fatalf("bundle contents lost: %+v", back)
	}
}

func TestBundleSelectByDevice(t *testing.T) {
	b, err := New("bench", fp32Curve(), fp16Curve())
	if err != nil {
		t.Fatal(err)
	}
	gpu := device.NewTX2GPU() // has FP16
	cpu := device.NewTX2CPU() // no FP16
	if got := b.Select(gpu); got != b.FP16 {
		t.Error("GPU should get the FP16 curve")
	}
	if got := b.Select(cpu); got != b.FP32 {
		t.Error("CPU should get the FP32 curve")
	}
	// Without an FP16 curve, everyone falls back to FP32.
	b2, err := New("bench", fp32Curve(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := b2.Select(gpu); got != b2.FP32 {
		t.Error("missing FP16 curve must fall back to FP32")
	}
}

func TestBundleRejectsFP16InFP32Slot(t *testing.T) {
	if _, err := New("bench", fp16Curve(), nil); err == nil ||
		!strings.Contains(err.Error(), "FP16 knob") {
		t.Fatalf("FP16 knobs in the FP32 slot must be rejected, got %v", err)
	}
}

func TestBundleRequiresFP32(t *testing.T) {
	if _, err := New("bench", nil, fp16Curve()); err == nil {
		t.Fatal("missing FP32 curve must be rejected")
	}
	empty := pareto.NewCurve("bench", 90, nil)
	if _, err := New("bench", empty, nil); err == nil {
		t.Fatal("empty FP32 curve must be rejected")
	}
}

func TestBundleChecksumDetectsTampering(t *testing.T) {
	b, err := New("bench", fp32Curve(), nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"perf": 1.6`, `"perf": 9.9`, 1)
	if tampered == string(data) {
		t.Fatal("test setup: substring not found")
	}
	if _, err := Load([]byte(tampered)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered bundle must fail checksum, got %v", err)
	}
}

func TestBundleVersionGate(t *testing.T) {
	b, err := New("bench", fp32Curve(), nil)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := b.Marshal()
	old := strings.Replace(string(data), `"version": 1`, `"version": 99`, 1)
	if _, err := Load([]byte(old)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version must be rejected, got %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load([]byte("{")); err == nil {
		t.Fatal("garbage must not load")
	}
}
