// Package canny implements the Canny edge-detection pipeline as an
// ApproxHPVM-style tensor-op graph, and the composite CNN + image
// processing benchmark of §7.6: an AlexNet2 classifier on CIFAR-like
// images whose predictions route images from five of the ten classes into
// the edge-detection pipeline. The benchmark's QoS is a pair —
// classification accuracy for the CNN and PSNR for the edge maps — and
// because the number of routed images depends on the classifier's output,
// the raw output shape varies with the configuration, so only the Π2
// prediction model applies (§7.6).
package canny

import (
	"math"

	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/internal/tensorops"
)

// Pipeline builds the Canny edge-detection graph for (N, C, H, W) inputs:
// grayscale (1×1 conv), Gaussian blur (5×5 conv), Sobel gradients (two
// 3×3 convs), magnitude (map ops), non-maximum suppression and
// double-threshold hysteresis. The convolution stages are regular conv
// nodes and accept the full convolution knob set (sampling, perforation,
// FP16), which is what makes the pipeline tunable.
func Pipeline(channels int, lo, hi float32) *graph.Graph {
	g := graph.New("canny")

	// Grayscale: 1×1 convolution averaging the channels.
	grayW := tensor.New(1, channels, 1, 1)
	for i := range grayW.Data() {
		grayW.Data()[i] = 1.0 / float32(channels)
	}
	gray := g.Conv(g.InputID(), grayW, nil, tensorops.ConvParams{}, "grayscale")

	// Gaussian blur 5×5, σ ≈ 1.
	blurW := tensor.New(1, 1, 5, 5)
	fillGaussian(blurW, 1.0)
	blur := g.Conv(gray, blurW, nil, tensorops.ConvParams{PadH: 2, PadW: 2}, "gaussian")

	// Sobel gradients.
	sx := tensor.FromSlice([]float32{
		-1, 0, 1,
		-2, 0, 2,
		-1, 0, 1,
	}, 1, 1, 3, 3)
	sy := tensor.FromSlice([]float32{
		-1, -2, -1,
		0, 0, 0,
		1, 2, 1,
	}, 1, 1, 3, 3)
	gx := g.Conv(blur, sx, nil, tensorops.ConvParams{PadH: 1, PadW: 1}, "sobel_x")
	gy := g.Conv(blur, sy, nil, tensorops.ConvParams{PadH: 1, PadW: 1}, "sobel_y")

	// Magnitude = sqrt(gx² + gy²).
	gx2 := g.Mul(gx, gx)
	gy2 := g.Mul(gy, gy)
	magSq := g.Add(gx2, gy2)
	mag := g.Sqrt(magSq)

	nms := g.NMS(mag, gx, gy)
	g.Hysteresis(nms, lo, hi)
	return g
}

func fillGaussian(w *tensor.Tensor, sigma float64) {
	k := w.Dim(2)
	c := float64(k-1) / 2
	var sum float64
	d := w.Data()
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			v := math.Exp(-((float64(y)-c)*(float64(y)-c) + (float64(x)-c)*(float64(x)-c)) / (2 * sigma * sigma))
			d[y*k+x] = float32(v)
			sum += v
		}
	}
	for i := range d {
		d[i] /= float32(sum)
	}
}
