package canny

import (
	"fmt"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/qos"
	"repro/internal/tensor"
)

// Composite is the combined CNN + image-processing benchmark of §7.6: an
// AlexNet2 CIFAR-10 classifier whose predictions route images from five
// of the ten classes into Canny edge detection. It implements
// core.Program with a two-component QoS: the tuning scalar is the minimum
// margin over the (accuracy, PSNR) thresholds, so a configuration is
// feasible (scalar > 0) exactly when both thresholds hold.
type Composite struct {
	CNN   *graph.Graph
	Canny *graph.Graph
	// EdgeClasses are the classes routed into edge detection.
	EdgeClasses map[int]bool
	// AccMin and PSNRMin are the §7.6 threshold pair under tuning.
	AccMin, PSNRMin float64

	calibImages, testImages *tensor.Tensor
	calibLabels, testLabels []int
	goldCalib, goldTest     *tensor.Tensor // baseline edge maps for every image
	classes                 int
	offset                  int // canny op IDs are offset by this in configs
	costs                   []graph.NodeCost

	// Baseline caches for the fast profile-collection path.
	cnnBaseCalib, cnnBaseTest     []*tensor.Tensor
	cannyBaseCalib, cannyBaseTest []*tensor.Tensor // over the baseline-routed subbatch
	baseSelCalib, baseSelTest     []int
}

// SetThresholds retargets the QoS threshold pair without recomputing the
// gold edge maps, letting one composite serve the Fig. 7 grid.
func (c *Composite) SetThresholds(accMin, psnrMin float64) {
	c.AccMin, c.PSNRMin = accMin, psnrMin
}

// BaselinePair returns the exact-execution (accuracy, PSNR) on an input
// set; threshold grids are defined relative to these.
func (c *Composite) BaselinePair(set core.InputSet) (acc, psnr float64) {
	return c.Decode(set, c.Run(nil, set, nil))
}

// NewComposite assembles the benchmark from a built CNN benchmark.
// The five even classes are routed to edge detection.
func NewComposite(b *models.Benchmark, accMin, psnrMin float64) (*Composite, error) {
	calib, test := b.Dataset.Split()
	cannyG := Pipeline(b.Model.C, 0.08, 0.2)
	c := &Composite{
		CNN:         b.Model.Graph,
		Canny:       cannyG,
		EdgeClasses: map[int]bool{0: true, 2: true, 4: true, 6: true, 8: true},
		AccMin:      accMin,
		PSNRMin:     psnrMin,
		calibImages: calib.Images,
		testImages:  test.Images,
		calibLabels: calib.Labels,
		testLabels:  test.Labels,
		classes:     b.Dataset.Classes,
		offset:      len(b.Model.Graph.Nodes),
	}
	// Gold edge maps: the exact pipeline on every image of each set.
	c.goldCalib = cannyG.Execute(calib.Images, nil, graph.ExecOptions{})
	c.goldTest = cannyG.Execute(test.Images, nil, graph.ExecOptions{})

	cnnCosts, err := b.Model.Graph.Costs(calib.Images.Shape())
	if err != nil {
		return nil, err
	}
	// Canny runs on roughly half the batch (5 of 10 classes).
	half := calib.Images.Dim(0) / 2
	if half < 1 {
		half = 1
	}
	halfShape := tensor.NewShape(half, calib.Images.Dim(1), calib.Images.Dim(2), calib.Images.Dim(3))
	cannyCosts, err := cannyG.Costs(halfShape)
	if err != nil {
		return nil, err
	}
	costs := append([]graph.NodeCost{}, cnnCosts...)
	for _, cc := range cannyCosts {
		cc.ID += c.offset
		costs = append(costs, cc)
	}
	c.costs = costs
	return c, nil
}

// Name implements core.Program.
func (c *Composite) Name() string { return "alexnet2_canny" }

// Ops implements core.Program: the CNN's approximable ops plus the Canny
// pipeline's, the latter offset to keep config keys unique.
func (c *Composite) Ops() []int {
	ops := append([]int{}, c.CNN.ApproxOps()...)
	for _, op := range c.Canny.ApproxOps() {
		ops = append(ops, op+c.offset)
	}
	return ops
}

// OpClass implements core.Program.
func (c *Composite) OpClass(op int) approx.OpClass {
	if op >= c.offset {
		return c.Canny.Nodes[op-c.offset].Kind.Class()
	}
	return c.CNN.Nodes[op].Kind.Class()
}

// Costs implements core.Program.
func (c *Composite) Costs() []graph.NodeCost { return c.costs }

// FixedOutputShape implements core.Program: the classifier decides how
// many images reach the edge detector, so the raw output size varies and
// Π1 does not apply (§7.6).
func (c *Composite) FixedOutputShape() bool { return false }

func (c *Composite) split(cfg approx.Config) (cnnCfg, cannyCfg approx.Config) {
	cnnCfg = make(approx.Config)
	cannyCfg = make(approx.Config)
	for op, k := range cfg {
		if op >= c.offset {
			cannyCfg[op-c.offset] = k
		} else {
			cnnCfg[op] = k
		}
	}
	return
}

func (c *Composite) inputs(set core.InputSet) (*tensor.Tensor, []int, *tensor.Tensor) {
	if set == core.Test {
		return c.testImages, c.testLabels, c.goldTest
	}
	return c.calibImages, c.calibLabels, c.goldCalib
}

// Run implements core.Program. The raw output encodes the classifier's
// probability tensor followed by the edge maps of the routed images, so
// Score can recover both components (and the routing) from the output
// alone.
func (c *Composite) Run(cfg approx.Config, set core.InputSet, rng *tensor.RNG) *tensor.Tensor {
	cnnCfg, cannyCfg := c.split(cfg)
	images, _, _ := c.inputs(set)
	probs := c.CNN.Execute(images, cnnCfg, graph.ExecOptions{RNG: rng})
	return c.assemble(set, probs, cannyCfg, rng)
}

// assemble routes images by the classifier's predictions, computes (or
// gathers) their edge maps, and encodes the combined raw output.
func (c *Composite) assemble(set core.InputSet, probs *tensor.Tensor, cannyCfg approx.Config, rng *tensor.RNG) *tensor.Tensor {
	images, _, gold := c.inputs(set)
	preds := probs.RowArgMax()
	selected := c.routed(preds)

	chn, h, w := images.Dim(1), images.Dim(2), images.Dim(3)
	per := chn * h * w
	edgePer := h * w
	var edgeData []float32
	if len(selected) > 0 {
		if baselineOnly(cannyCfg) {
			// Exact pipeline requested: the per-image gold edge maps are
			// precomputed, so gather instead of re-running Canny.
			edgeData = make([]float32, 0, len(selected)*edgePer)
			for _, idx := range selected {
				edgeData = append(edgeData, gold.Data()[idx*edgePer:(idx+1)*edgePer]...)
			}
		} else {
			sub := tensor.New(len(selected), chn, h, w)
			for i, idx := range selected {
				copy(sub.Data()[i*per:(i+1)*per], images.Data()[idx*per:(idx+1)*per])
			}
			edgeData = c.Canny.Execute(sub, cannyCfg, graph.ExecOptions{RNG: rng}).Data()
		}
	}

	out := make([]float32, 0, probs.Elems()+len(edgeData))
	out = append(out, probs.Data()...)
	out = append(out, edgeData...)
	return tensor.FromSlice(out, len(out))
}

func baselineOnly(cfg approx.Config) bool {
	for _, k := range cfg {
		if k != approx.KnobFP32 {
			return false
		}
	}
	return true
}

// ensureBaselines populates the per-set caches backing RunSuffix.
func (c *Composite) ensureBaselines(set core.InputSet) ([]*tensor.Tensor, []*tensor.Tensor, []int) {
	cnnBase := &c.cnnBaseCalib
	cannyBase := &c.cannyBaseCalib
	baseSel := &c.baseSelCalib
	if set == core.Test {
		cnnBase, cannyBase, baseSel = &c.cnnBaseTest, &c.cannyBaseTest, &c.baseSelTest
	}
	if *cnnBase == nil {
		images, _, _ := c.inputs(set)
		*cnnBase = c.CNN.ExecuteAll(images, nil, graph.ExecOptions{})
		probs := (*cnnBase)[c.CNN.Output]
		*baseSel = c.routed(probs.RowArgMax())
		if len(*baseSel) > 0 {
			chn, h, w := images.Dim(1), images.Dim(2), images.Dim(3)
			per := chn * h * w
			sub := tensor.New(len(*baseSel), chn, h, w)
			for i, idx := range *baseSel {
				copy(sub.Data()[i*per:(i+1)*per], images.Data()[idx*per:(idx+1)*per])
			}
			*cannyBase = c.Canny.ExecuteAll(sub, nil, graph.ExecOptions{})
		}
	}
	return *cnnBase, *cannyBase, *baseSel
}

// RunSuffix implements core.SuffixRunner: single-op profile runs reuse the
// cached baselines. A CNN op re-executes only the CNN suffix (edge maps
// come from the gold cache, since the Canny stage stays exact); a Canny op
// re-executes only the Canny suffix on the baseline-routed subbatch.
func (c *Composite) RunSuffix(op int, knob approx.KnobID, set core.InputSet, rng *tensor.RNG) *tensor.Tensor {
	cnnBase, cannyBase, baseSel := c.ensureBaselines(set)
	opts := graph.ExecOptions{RNG: rng}
	if op < c.offset {
		probs := c.CNN.ExecuteFrom(cnnBase, op, approx.Config{op: knob}, opts)
		return c.assemble(set, probs, nil, rng)
	}
	probs := cnnBase[c.CNN.Output]
	var edgeData []float32
	if len(baseSel) > 0 {
		cop := op - c.offset
		edges := c.Canny.ExecuteFrom(cannyBase, cop, approx.Config{cop: knob}, opts)
		edgeData = edges.Data()
	}
	out := make([]float32, 0, probs.Elems()+len(edgeData))
	out = append(out, probs.Data()...)
	out = append(out, edgeData...)
	return tensor.FromSlice(out, len(out))
}

func (c *Composite) routed(preds []int) []int {
	var sel []int
	for i, p := range preds {
		if c.EdgeClasses[p] {
			sel = append(sel, i)
		}
	}
	return sel
}

// Decode splits a raw output into accuracy and mean PSNR for the set.
func (c *Composite) Decode(set core.InputSet, out *tensor.Tensor) (acc, psnr float64) {
	images, labels, gold := c.inputs(set)
	n := images.Dim(0)
	k := c.classes
	h, w := images.Dim(2), images.Dim(3)
	probs := tensor.FromSlice(out.Data()[:n*k], n, k)
	acc = qos.Accuracy{Labels: labels}.Score(probs)

	preds := probs.RowArgMax()
	selected := c.routed(preds)
	edgeData := out.Data()[n*k:]
	per := h * w
	if len(edgeData) != len(selected)*per {
		panic(fmt.Sprintf("canny: edge payload %d does not match %d routed images", len(edgeData), len(selected)))
	}
	if len(selected) == 0 {
		return acc, 100 // nothing routed: image quality vacuously perfect
	}
	var sum float64
	for i, idx := range selected {
		got := tensor.FromSlice(edgeData[i*per:(i+1)*per], per)
		want := tensor.FromSlice(gold.Data()[idx*per:(idx+1)*per], per)
		sum += qos.PSNRValue(got, want)
	}
	return acc, sum / float64(len(selected))
}

// Score implements core.Program: the minimum threshold margin
// min(acc − AccMin, psnr − PSNRMin). A configuration is feasible iff the
// scalar is positive, so tuning uses QoSMin = 0.
func (c *Composite) Score(set core.InputSet, out *tensor.Tensor) float64 {
	acc, psnr := c.Decode(set, out)
	mAcc := acc - c.AccMin
	mPSNR := psnr - c.PSNRMin
	if mAcc < mPSNR {
		return mAcc
	}
	return mPSNR
}
