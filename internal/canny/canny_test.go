package canny

import (
	"math"
	"testing"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/predictor"
	"repro/internal/tensor"
	"repro/internal/tensorops"
)

func TestPipelineStructure(t *testing.T) {
	g := Pipeline(3, 0.08, 0.2)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// 4 convolutions: grayscale, gaussian, sobel x, sobel y.
	convs := 0
	for _, n := range g.Nodes {
		if n.Kind == graph.OpConv {
			convs++
		}
	}
	if convs != 4 {
		t.Errorf("pipeline has %d convs, want 4", convs)
	}
}

func TestPipelineProducesBinaryEdges(t *testing.T) {
	g := Pipeline(1, 0.08, 0.2)
	rng := tensor.NewRNG(1)
	// A step edge: left half dark, right half bright.
	in := tensor.New(1, 1, 16, 16)
	for y := 0; y < 16; y++ {
		for x := 8; x < 16; x++ {
			in.Set(1, 0, 0, y, x)
		}
	}
	_ = rng
	out := g.Execute(in, nil, graph.ExecOptions{})
	ones, zeros := 0, 0
	for _, v := range out.Data() {
		switch v {
		case 0:
			zeros++
		case 1:
			ones++
		default:
			t.Fatalf("non-binary edge value %v", v)
		}
	}
	if ones == 0 {
		t.Error("step edge produced no edge pixels")
	}
	if zeros == 0 {
		t.Error("everything is an edge")
	}
	// The edge should be a thin vertical band near column 8: count edge
	// pixels per column.
	colCount := make([]int, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if out.At(0, 0, y, x) == 1 {
				colCount[x]++
			}
		}
	}
	peak := 0
	for x, c := range colCount {
		if c > colCount[peak] {
			peak = x
		}
		_ = c
	}
	if peak < 6 || peak > 9 {
		t.Errorf("edge detected at column %d, want near 8 (%v)", peak, colCount)
	}
}

func TestGaussianKernelNormalized(t *testing.T) {
	w := tensor.New(1, 1, 5, 5)
	fillGaussian(w, 1.0)
	var sum float64
	for _, v := range w.Data() {
		if v <= 0 {
			t.Fatal("gaussian weights must be positive")
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Errorf("kernel sums to %v, want 1", sum)
	}
	// center is the max
	if w.At(0, 0, 2, 2) <= w.At(0, 0, 0, 0) {
		t.Error("center weight should dominate corners")
	}
}

func buildComposite(t testing.TB) *Composite {
	t.Helper()
	b := models.MustBuild("alexnet2", models.Scale{Images: 16, Width: 0.125, ImageNetSize: 32, Seed: 21})
	c, err := NewComposite(b, b.BaselineAcc-15, 15)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompositeOpsDisjoint(t *testing.T) {
	c := buildComposite(t)
	ops := c.Ops()
	seen := map[int]bool{}
	for _, op := range ops {
		if seen[op] {
			t.Fatalf("duplicate op id %d", op)
		}
		seen[op] = true
	}
	// CNN ops + 4 canny convs and friends
	if len(ops) <= len(c.CNN.ApproxOps()) {
		t.Error("composite must expose canny ops too")
	}
}

func TestCompositeBaselineScores(t *testing.T) {
	c := buildComposite(t)
	out := c.Run(nil, core.Calib, nil)
	acc, psnr := c.Decode(core.Calib, out)
	if acc < 50 {
		t.Errorf("baseline accuracy %v suspiciously low", acc)
	}
	if psnr != 100 {
		t.Errorf("baseline PSNR = %v, want 100 (edge maps identical to gold)", psnr)
	}
	if c.Score(core.Calib, out) <= 0 {
		t.Error("baseline must be feasible")
	}
}

func TestCompositeApproximationLowersPSNR(t *testing.T) {
	c := buildComposite(t)
	// Perforate the gaussian blur heavily.
	var gaussianOp int
	for _, n := range c.Canny.Nodes {
		if n.Name == "gaussian" {
			gaussianOp = n.ID + len(c.CNN.Nodes)
		}
	}
	cfg := approx.Config{gaussianOp: approx.PerforationKnob(tensorops.PerfRows, 2, 0, tensorops.FP32)}
	out := c.Run(cfg, core.Calib, nil)
	_, psnr := c.Decode(core.Calib, out)
	if psnr >= 100 {
		t.Errorf("perforated blur should lower PSNR, got %v", psnr)
	}
	if psnr < 5 {
		t.Errorf("PSNR %v collapsed entirely", psnr)
	}
}

func TestCompositeVariableOutputShape(t *testing.T) {
	c := buildComposite(t)
	if c.FixedOutputShape() {
		t.Fatal("composite must report variable output shapes (Π1 unsupported, §7.6)")
	}
	// Different configs can route different image subsets → different
	// output sizes. Verify the decoder handles the baseline correctly and
	// a CNN-perturbing config still decodes.
	cfg := approx.Config{}
	for _, op := range c.CNN.ApproxOps() {
		if c.OpClass(op) == approx.OpConv {
			cfg[op] = approx.PerforationKnob(tensorops.PerfCols, 2, 1, tensorops.FP32)
		}
	}
	out := c.Run(cfg, core.Calib, nil)
	acc, psnr := c.Decode(core.Calib, out)
	if acc < 0 || acc > 100 {
		t.Errorf("acc = %v", acc)
	}
	if psnr <= 0 {
		t.Errorf("psnr = %v", psnr)
	}
}

func TestCompositeTunesWithPi2(t *testing.T) {
	c := buildComposite(t)
	res, err := core.PredictiveTune(c, core.Options{
		QoSMin:     0,
		Model:      predictor.Pi2,
		NCalibrate: 5,
		MaxIters:   120,
		StallLimit: 60,
		MaxConfigs: 10,
		Policy:     core.KnobPolicy{AllowFP16: true},
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve.Len() == 0 {
		t.Fatal("composite tuning produced no feasible configurations")
	}
	for _, pt := range res.Curve.Points {
		if pt.QoS <= 0 {
			t.Errorf("infeasible point shipped: margin %v", pt.QoS)
		}
	}
}

func TestCompositePi1Rejected(t *testing.T) {
	c := buildComposite(t)
	_, err := core.PredictiveTune(c, core.Options{
		QoSMin: 0, Model: predictor.Pi1, MaxIters: 10, Seed: 1,
	})
	if err == nil {
		t.Fatal("Π1 must be rejected for the composite benchmark")
	}
}

func TestImageMapOps(t *testing.T) {
	x := tensor.FromSlice([]float32{-2, 3}, 2)
	a := tensorops.Abs(x, tensorops.FP32)
	if a.Data()[0] != 2 || a.Data()[1] != 3 {
		t.Errorf("Abs = %v", a.Data())
	}
	s := tensorops.Sqrt(tensor.FromSlice([]float32{4, -1}, 2), tensorops.FP32)
	if s.Data()[0] != 2 || s.Data()[1] != 0 {
		t.Errorf("Sqrt = %v", s.Data())
	}
	m := tensorops.Mul(tensor.FromSlice([]float32{2, 3}, 2), tensor.FromSlice([]float32{4, 5}, 2), tensorops.FP32)
	if m.Data()[0] != 8 || m.Data()[1] != 15 {
		t.Errorf("Mul = %v", m.Data())
	}
}

func TestHysteresisPromotion(t *testing.T) {
	// A weak pixel adjacent to a strong one becomes an edge; an isolated
	// weak pixel does not.
	mag := tensor.New(1, 1, 3, 5)
	mag.Set(0.5, 0, 0, 1, 1) // strong (hi=0.3)
	mag.Set(0.2, 0, 0, 1, 2) // weak, adjacent to strong
	mag.Set(0.2, 0, 0, 1, 4) // weak, isolated
	out := tensorops.Hysteresis(mag, 0.1, 0.3, tensorops.FP32)
	if out.At(0, 0, 1, 1) != 1 {
		t.Error("strong pixel must be an edge")
	}
	if out.At(0, 0, 1, 2) != 1 {
		t.Error("weak neighbor of strong must be promoted")
	}
	if out.At(0, 0, 1, 4) != 0 {
		t.Error("isolated weak pixel must be suppressed")
	}
}

func TestNMSKeepsRidge(t *testing.T) {
	// Horizontal gradient: a vertical ridge of magnitude; NMS should keep
	// the ridge column and zero its neighbors.
	mag := tensor.New(1, 1, 5, 5)
	gx := tensor.New(1, 1, 5, 5)
	gy := tensor.New(1, 1, 5, 5)
	for y := 0; y < 5; y++ {
		mag.Set(0.5, 0, 0, y, 1)
		mag.Set(1.0, 0, 0, y, 2)
		mag.Set(0.5, 0, 0, y, 3)
		for x := 0; x < 5; x++ {
			gx.Set(1, 0, 0, y, x) // purely horizontal gradient
		}
	}
	out := tensorops.NonMaxSuppress(mag, gx, gy, tensorops.FP32)
	for y := 0; y < 5; y++ {
		if out.At(0, 0, y, 2) != 1.0 {
			t.Errorf("ridge peak lost at row %d", y)
		}
		if out.At(0, 0, y, 1) != 0 || out.At(0, 0, y, 3) != 0 {
			t.Errorf("ridge flanks not suppressed at row %d", y)
		}
	}
}

func TestCompositeRunSuffixMatchesRun(t *testing.T) {
	c := buildComposite(t)
	// A CNN conv op and a Canny conv op, one non-trivial knob each.
	cnnOp := c.CNN.ApproxOps()[0]
	var cannyOp int
	for _, n := range c.Canny.Nodes {
		if n.Name == "sobel_x" {
			cannyOp = n.ID + len(c.CNN.Nodes)
		}
	}
	for _, op := range []int{cnnOp, cannyOp} {
		knob := approx.SamplingKnob(2, 1, tensorops.FP32)
		fast := c.RunSuffix(op, knob, core.Calib, nil)
		slow := c.Run(approx.Config{op: knob}, core.Calib, nil)
		if !tensor.Equal(fast, slow, 1e-6) {
			t.Fatalf("op %d: RunSuffix diverges from Run (%d vs %d elems)", op, fast.Elems(), slow.Elems())
		}
	}
}

func TestCompositeGoldShortcut(t *testing.T) {
	// With an exact Canny configuration, Run must produce exactly the
	// gold edge maps (the gather shortcut must be a no-op semantically).
	c := buildComposite(t)
	cnnOp := c.CNN.ApproxOps()[1]
	cfg := approx.Config{cnnOp: approx.KnobFP16} // perturb CNN only
	out := c.Run(cfg, core.Calib, nil)
	_, psnr := c.Decode(core.Calib, out)
	if psnr != 100 {
		t.Errorf("exact Canny stage should give gold edges (PSNR 100), got %v", psnr)
	}
}

func TestCompositeSetThresholds(t *testing.T) {
	c := buildComposite(t)
	accBase, psnrBase := c.BaselinePair(core.Calib)
	if psnrBase != 100 {
		t.Fatalf("baseline PSNR = %v", psnrBase)
	}
	c.SetThresholds(accBase-1, 20)
	out := c.Run(nil, core.Calib, nil)
	if got := c.Score(core.Calib, out); got <= 0 {
		t.Errorf("baseline infeasible after SetThresholds: margin %v", got)
	}
	c.SetThresholds(accBase+1, 20) // impossible accuracy bar
	if got := c.Score(core.Calib, out); got > 0 {
		t.Errorf("impossible threshold should be infeasible, margin %v", got)
	}
}
