// Package bench contains the experiment runners that regenerate every
// table and figure of the paper's evaluation (§6–7), shared between
// cmd/benchtab and the repository's testing.B benchmarks. Each experiment
// produces a Report with the same rows/series the paper presents;
// EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/predictor"
	"repro/internal/qos"
	"repro/internal/tensor"
)

// Config sizes the experiment suite. Zero values take defaults sized for
// a single-core host; the paper's full-scale settings are recorded in
// DESIGN.md §1.
type Config struct {
	// Benchmarks restricts the CNN set (nil = all ten).
	Benchmarks []string
	// Images is the dataset size per benchmark (split 50/50).
	Images int
	// Width is the channel-width multiplier; HeavyWidth overrides it for
	// the two largest networks (resnet50, vgg16_imagenet).
	Width, HeavyWidth float64
	// ImageNetSize is the mini-ImageNet resolution.
	ImageNetSize int
	// MaxIters / StallLimit bound predictive searches; EmpIters bounds
	// empirical searches (each empirical iteration runs the network).
	MaxIters, StallLimit, EmpIters int
	// NCalibrate is the α-calibration sample count.
	NCalibrate int
	// MaxConfigs caps validated/shipped curves (paper: 50).
	MaxConfigs int
	Seed       int64
	// FaultSlowdown, when > 1, injects an unmodeled execution-time
	// slowdown of that factor over the second half of the DVFS ladder in
	// the runtime-adaptation experiment (RunFig6Health), to exercise the
	// runtime tuner's drift detectors. 0 or 1 injects nothing.
	FaultSlowdown float64
}

// Defaults returns the standard single-core-host configuration.
func Defaults() Config {
	return Config{
		Images:       64,
		Width:        0.25,
		HeavyWidth:   0.125,
		ImageNetSize: 48,
		MaxIters:     4000,
		StallLimit:   800,
		EmpIters:     300,
		NCalibrate:   20,
		MaxConfigs:   50,
		Seed:         1,
	}
}

// Quick returns a configuration small enough for unit-test-speed runs.
func Quick() Config {
	return Config{
		Benchmarks:   []string{"lenet", "alexnet2"},
		Images:       24,
		Width:        0.125,
		HeavyWidth:   0.125,
		ImageNetSize: 32,
		MaxIters:     400,
		StallLimit:   200,
		EmpIters:     80,
		NCalibrate:   8,
		MaxConfigs:   20,
		Seed:         1,
	}
}

func (c Config) norm() Config {
	d := Defaults()
	if c.Images == 0 {
		c.Images = d.Images
	}
	//lint:ignore floateq exact zero is the unset-field sentinel
	if c.Width == 0 {
		c.Width = d.Width
	}
	//lint:ignore floateq exact zero is the unset-field sentinel
	if c.HeavyWidth == 0 {
		c.HeavyWidth = d.HeavyWidth
	}
	if c.ImageNetSize == 0 {
		c.ImageNetSize = d.ImageNetSize
	}
	if c.MaxIters == 0 {
		c.MaxIters = d.MaxIters
	}
	if c.StallLimit == 0 {
		c.StallLimit = d.StallLimit
	}
	if c.EmpIters == 0 {
		c.EmpIters = d.EmpIters
	}
	if c.NCalibrate == 0 {
		c.NCalibrate = d.NCalibrate
	}
	if c.MaxConfigs == 0 {
		c.MaxConfigs = d.MaxConfigs
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

func (c Config) names() []string {
	if len(c.Benchmarks) > 0 {
		return c.Benchmarks
	}
	return models.Names()
}

// heavy benchmarks take the HeavyWidth override.
var heavy = map[string]bool{"resnet50": true, "vgg16_imagenet": true}

// Session caches built benchmarks, programs and tuning artifacts so the
// experiments share work (profile collection dominates cost and is reused
// across thresholds and predictors).
type Session struct {
	cfg     Config
	entries map[string]*entry
}

type entry struct {
	bench    *models.Benchmark
	prog     *core.GraphProgram
	calib    []int               // calibration labels
	profiles *predictor.Profiles // hardware-independent, FP16 included
	profTime time.Duration       // wall-clock of profile collection
	results  map[string]*core.Result
}

// NewSession builds an empty session.
func NewSession(cfg Config) *Session {
	return &Session{cfg: cfg.norm(), entries: make(map[string]*entry)}
}

// Cfg returns the session's normalized configuration.
func (s *Session) Cfg() Config { return s.cfg }

// Entry lazily builds (and caches) a benchmark and its tunable program.
func (s *Session) Entry(name string) *entry {
	if e, ok := s.entries[name]; ok {
		return e
	}
	scale := models.Scale{
		Images:       s.cfg.Images,
		Width:        s.cfg.Width,
		ImageNetSize: s.cfg.ImageNetSize,
		Seed:         s.cfg.Seed,
	}
	if heavy[name] {
		scale.Width = s.cfg.HeavyWidth
	}
	b := models.MustBuild(name, scale)
	calib, test := b.Dataset.Split()
	gp, err := core.NewGraphProgram(b.Model.Graph, calib.Images, test.Images,
		qos.Accuracy{Labels: calib.Labels}, qos.Accuracy{Labels: test.Labels})
	if err != nil {
		panic(fmt.Sprintf("bench: %s: %v", name, err))
	}
	gp.CalibMetricFor = func(lo, hi int) qos.Metric {
		return qos.Accuracy{Labels: calib.Labels[lo:hi]}
	}
	e := &entry{bench: b, prog: gp, calib: calib.Labels, results: make(map[string]*core.Result)}
	s.entries[name] = e
	return e
}

// Profiles lazily collects (and caches) the hardware-independent profiles
// for a benchmark, FP16 knobs included — a superset usable by FP32-only
// tuning too.
func (s *Session) Profiles(name string) *predictor.Profiles {
	e := s.Entry(name)
	if e.profiles == nil {
		pol := core.KnobPolicy{AllowFP16: true}
		sp := obs.Start("bench:profiles").With("benchmark", name)
		watch := core.NewStopwatch()
		e.profiles = core.CollectProfilesSpan(e.prog, nil, func(op int) []approx.KnobID {
			return core.KnobsFor(e.prog, op, pol)
		}, tensor.NewRNG(s.cfg.Seed+11), sp)
		e.profTime = watch.Total()
		sp.End()
	}
	return e.profiles
}

// tuneOptions assembles core options from the session configuration.
func (s *Session) tuneOptions(qosMin float64, model predictor.Model, pol core.KnobPolicy) core.Options {
	return core.Options{
		QoSMin:     qosMin,
		Model:      model,
		NCalibrate: s.cfg.NCalibrate,
		MaxIters:   s.cfg.MaxIters,
		StallLimit: s.cfg.StallLimit,
		MaxConfigs: s.cfg.MaxConfigs,
		Policy:     pol,
		Seed:       s.cfg.Seed,
	}
}

// CalibBaseline returns the exact-execution QoS on the calibration set —
// the reference all ΔQoS thresholds are relative to (at small N it can
// differ from the full-set planted accuracy by a quantum).
func (s *Session) CalibBaseline(name string) float64 {
	e := s.Entry(name)
	return e.prog.Score(core.Calib, e.prog.BaselineOut(core.Calib))
}

// DevTune runs (and caches) a predictive development-time tuning run.
func (s *Session) DevTune(name string, deltaQoS float64, model predictor.Model, allowFP16 bool) *core.Result {
	e := s.Entry(name)
	key := fmt.Sprintf("pred|%v|%v|%v", deltaQoS, model, allowFP16)
	if r, ok := e.results[key]; ok {
		return r
	}
	o := s.tuneOptions(s.CalibBaseline(name)-deltaQoS, model, core.KnobPolicy{AllowFP16: allowFP16})
	o.Profiles = s.Profiles(name)
	res, err := core.PredictiveTune(e.prog, o)
	if err != nil {
		panic(fmt.Sprintf("bench: %s devtune: %v", name, err))
	}
	e.results[key] = res
	return res
}

// EmpTune runs (and caches) a conventional empirical tuning run.
func (s *Session) EmpTune(name string, deltaQoS float64, allowFP16 bool) *core.Result {
	e := s.Entry(name)
	key := fmt.Sprintf("emp|%v|%v", deltaQoS, allowFP16)
	if r, ok := e.results[key]; ok {
		return r
	}
	o := s.tuneOptions(s.CalibBaseline(name)-deltaQoS, predictor.Pi2, core.KnobPolicy{AllowFP16: allowFP16})
	o.MaxIters = s.cfg.EmpIters
	o.StallLimit = s.cfg.EmpIters
	res, err := core.EmpiricalTune(e.prog, o)
	if err != nil {
		panic(fmt.Sprintf("bench: %s emptune: %v", name, err))
	}
	e.results[key] = res
	return res
}

// Report is one regenerated table or figure.
type Report struct {
	Name     string
	Title    string
	Header   []string
	Rows     [][]string
	Notes    []string
	Measures map[string]float64 // headline numbers for EXPERIMENTS.md
}

// AddMeasure records a headline number.
func (r *Report) AddMeasure(key string, v float64) {
	if r.Measures == nil {
		r.Measures = make(map[string]float64)
	}
	r.Measures[key] = v
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.Name, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
			} else {
				b.WriteString(cell + "  ")
			}
		}
		b.WriteString("\n")
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	if len(r.Measures) > 0 {
		keys := make([]string, 0, len(r.Measures))
		for k := range r.Measures {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s = %.3f\n", k, r.Measures[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Geomean returns the geometric mean of positive values.
func Geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
