package bench

import (
	"fmt"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pareto"
	"repro/internal/predictor"
)

// Fig4 regenerates Figure 4: energy reductions on GPU + PROMISE with
// install-time distributed predictive tuning (Π1 and Π2) versus empirical
// tuning, for ΔQoS 3 %, plus the §7.4 tuning-time split (edge profile
// collection vs server autotuning).
func Fig4(s *Session) *Report {
	r := &Report{
		Name:   "fig4",
		Title:  "Install-time GPU+PROMISE energy reductions at ΔQoS 3%",
		Header: []string{"Benchmark", "Π1", "Π2", "Empirical", "edge-prof", "server-tune"},
	}
	var e1, e2, eE []float64
	for _, name := range s.Cfg().names() {
		e := s.Entry(name)
		qosMin := s.CalibBaseline(name) - 3
		gpu := device.NewTX2GPU()
		devRes := s.DevTune(name, 3, predictor.Pi2, true)

		get := func(model predictor.Model) (*core.InstallResult, float64) {
			res, err := core.InstallTune(e.prog, devRes.Profiles, core.InstallOptions{
				Options:   s.tuneOptions(qosMin, model, core.KnobPolicy{AllowFP16: true}),
				Device:    gpu,
				Objective: core.MinimizeEnergy,
				NEdge:     4,
			})
			if err != nil {
				panic(fmt.Sprintf("bench: %s install %v: %v", name, model, err))
			}
			if pt, ok := res.Curve.Best(qosMin); ok {
				return res, pt.Perf
			}
			return res, 1
		}
		res1, v1 := get(predictor.Pi1)
		_, v2 := get(predictor.Pi2)

		// Empirical install-time comparison: measurement-based search over
		// the combined software+hardware knob space, optimizing measured
		// energy on the device.
		vE := 1.0
		{
			o := s.tuneOptions(qosMin, predictor.Pi2, core.KnobPolicy{AllowFP16: true, IncludeHardware: true})
			o.MaxIters, o.StallLimit = s.cfg.EmpIters, s.cfg.EmpIters
			costs := e.prog.Costs()
			o.PerfModel = func(cfg approx.Config) float64 {
				return gpu.Energy(costs, nil) / gpu.Energy(costs, cfg)
			}
			empRes, err := core.EmpiricalTune(e.prog, o)
			if err != nil {
				panic(fmt.Sprintf("bench: %s empirical install: %v", name, err))
			}
			if pt, ok := empRes.Curve.Best(qosMin); ok {
				vE = pt.Perf
			}
		}
		e1 = append(e1, v1)
		e2 = append(e2, v2)
		eE = append(eE, vE)
		r.Rows = append(r.Rows, []string{
			name, f2(v1), f2(v2), f2(vE),
			res1.Stats.EdgeProfileTime.Round(time.Millisecond).String(),
			res1.Stats.ServerTuneTime.Round(time.Millisecond).String(),
		})
	}
	r.Rows = append(r.Rows, []string{"geomean", f2(Geomean(e1)), f2(Geomean(e2)), f2(Geomean(eE)), "", ""})
	r.AddMeasure("install_energy_pi1_geomean", Geomean(e1))
	r.AddMeasure("install_energy_pi2_geomean", Geomean(e2))
	r.AddMeasure("install_energy_empirical_geomean", Geomean(eE))
	r.Notes = append(r.Notes, "paper: Π1 4.7x, Π2 3.3x, empirical 4.8x energy reduction (geomean)")
	return r
}

// Fig5 regenerates Figure 5: GPU, DDR and total system power across the
// DVFS ladder (measured while running ResNet-18 in the paper; the rails
// model is workload-independent here).
func Fig5(s *Session) *Report {
	r := &Report{
		Name:   "fig5",
		Title:  "GPU/DDR/SYS power vs GPU frequency",
		Header: []string{"Freq(MHz)", "GPU(W)", "DDR(W)", "SYS(W)"},
	}
	gpu := device.NewTX2GPU()
	var gHi, gLo, sHi, sLo float64
	for i, f := range device.Freqs {
		gpu.SetFrequencyMHz(f)
		g, d, sys := gpu.Rails()
		if i == 0 {
			gHi, sHi = g, sys
		}
		if i == len(device.Freqs)-1 {
			gLo, sLo = g, sys
		}
		r.Rows = append(r.Rows, []string{fmt.Sprintf("%.0f", f), f2(g), f2(d), f2(sys)})
	}
	r.AddMeasure("gpu_power_ratio", gHi/gLo)
	r.AddMeasure("sys_power_ratio", sHi/sLo)
	r.Notes = append(r.Notes, "paper: ~7x GPU and ~1.9x SYS power drop from 1300 to 318 MHz; DDR nearly flat")
	return r
}

// Fig6Row is one frequency step of the runtime-adaptation experiment.
type Fig6Row struct {
	FreqMHz          float64
	BaselineNormTime float64 // no adaptation
	AdaptedNormTime  float64
	AdaptedAccuracy  float64
	BaselineAccuracy float64
	ConfigSwitches   int
}

// Fig6 regenerates Figure 6: runtime approximation tuning holds batch
// time near 1.0 across the DVFS ladder while gracefully degrading
// accuracy, for the three CNNs the paper plots (ResNet-18,
// AlexNet-ImageNet, AlexNet2).
func Fig6(s *Session) *Report {
	r := &Report{
		Name:   "fig6",
		Title:  "Runtime adaptation under DVFS (normalized time / accuracy)",
		Header: []string{"Benchmark", "Freq", "base-time", "adapt-time", "accuracy", "Δacc"},
	}
	names := []string{"resnet18", "alexnet_imagenet", "alexnet2"}
	if len(s.Cfg().Benchmarks) > 0 {
		names = s.Cfg().Benchmarks
	}
	for _, name := range names {
		rows := RunFig6(s, name)
		e := s.Entry(name)
		_ = e
		for _, row := range rows {
			r.Rows = append(r.Rows, []string{
				name, fmt.Sprintf("%.0f", row.FreqMHz),
				f2(row.BaselineNormTime), f2(row.AdaptedNormTime),
				f2(row.AdaptedAccuracy), f2(row.BaselineAccuracy - row.AdaptedAccuracy),
			})
		}
		last := rows[len(rows)-1]
		r.AddMeasure(name+"_baseline_slowdown_at_319MHz", last.BaselineNormTime)
		r.AddMeasure(name+"_adapted_time_at_319MHz", last.AdaptedNormTime)
	}
	r.Notes = append(r.Notes,
		"paper (ResNet-18): 1.45x potential slowdown at 675MHz countered with 0.33pp accuracy; 1.75x at 497MHz with 1.25pp")
	return r
}

// RunFig6 simulates the runtime-adaptation experiment for one benchmark
// across the full DVFS ladder and returns the per-frequency rows.
func RunFig6(s *Session, name string) []Fig6Row {
	rows, _ := RunFig6Health(s, name)
	return rows
}

// RunFig6Health is RunFig6 plus the runtime tuner's health snapshot.
// When cfg.FaultSlowdown > 1, measured batch times are additionally
// multiplied by that factor over the second half of the DVFS ladder —
// an injected fault the shipped curve knows nothing about, which the
// tuner's drift detectors should surface as alarms and a latched
// recalibration signal (the DVFS ladder itself is modeled by the device
// and stays fault-free).
func RunFig6Health(s *Session, name string) ([]Fig6Row, core.RuntimeHealth) {
	e := s.Entry(name)
	qosMin := s.CalibBaseline(name) - 3
	gpu := device.NewTX2GPU()
	costs := e.prog.Costs()

	// Install-time refined curve (time objective) feeds the runtime.
	devRes := s.DevTune(name, 3, predictor.Pi2, true)
	inst, err := core.RefineCurve(e.prog, devRes.Curve, core.InstallOptions{
		Options: s.tuneOptions(qosMin, predictor.Pi2, core.KnobPolicy{AllowFP16: true}),
		Device:  gpu,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: %s fig6 refine: %v", name, err))
	}

	gpu.SetFrequencyMHz(device.Freqs[0])
	target := gpu.Time(costs, nil) // baseline batch time at max frequency
	rt, err := core.NewRuntimeTuner(inst.Curve, core.PolicyAverage, target, 1, s.cfg.Seed)
	if err != nil {
		panic(fmt.Sprintf("bench: %s fig6 runtime: %v", name, err))
	}
	defer rt.Close()

	// Cache test accuracy per distinct configuration.
	accCache := map[string]float64{}
	nOps := len(e.bench.Model.Graph.Nodes)
	accOf := func(pt pareto.Point) float64 {
		key := pt.Config.Key(nOps)
		if v, ok := accCache[key]; ok {
			return v
		}
		out := e.prog.Run(pt.Config, core.Test, nil)
		v := e.prog.Score(core.Test, out)
		accCache[key] = v
		return v
	}
	baseAcc := e.prog.Score(core.Test, e.prog.BaselineOut(core.Test))

	const batches = 24
	var rows []Fig6Row
	for fi, f := range device.Freqs {
		gpu.SetFrequencyMHz(f)
		baseTime := gpu.Time(costs, nil)
		// Injected fault: an unmodeled slowdown over the second half of
		// the ladder (cache pollution, thermal throttling beyond DVFS, a
		// co-scheduled tenant — anything calibration never saw).
		fault := 1.0
		if s.cfg.FaultSlowdown > 1 && fi >= len(device.Freqs)/2 {
			fault = s.cfg.FaultSlowdown
		}
		var sumTime, sumAcc float64
		startSwitches := rt.Switches()
		for b := 0; b < batches; b++ {
			pt := rt.CurrentPoint()
			bt := gpu.Time(costs, pt.Config) * fault
			sumTime += bt
			sumAcc += accOf(pt)
			rt.RecordInvocation(bt)
		}
		rows = append(rows, Fig6Row{
			FreqMHz:          f,
			BaselineNormTime: baseTime / target,
			AdaptedNormTime:  sumTime / float64(batches) / target,
			AdaptedAccuracy:  sumAcc / float64(batches),
			BaselineAccuracy: baseAcc,
			ConfigSwitches:   rt.Switches() - startSwitches,
		})
	}
	return rows, rt.Health()
}
