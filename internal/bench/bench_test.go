package bench

import (
	"fmt"
	"strings"
	"testing"
)

// quickSession returns a session shared within a test (sessions cache
// heavy artifacts, so each test builds its own to stay hermetic).
func quickSession() *Session { return NewSession(Quick()) }

func TestTable1(t *testing.T) {
	s := quickSession()
	r := Table1(s)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (quick config)", len(r.Rows))
	}
	if !strings.Contains(r.String(), "lenet") {
		t.Error("report should mention lenet")
	}
}

func TestFig2AndCPU(t *testing.T) {
	s := quickSession()
	r := Fig2(s)
	gm1 := r.Measures["gpu_speedup_geomean_1pct"]
	gm3 := r.Measures["gpu_speedup_geomean_3pct"]
	if gm1 < 1.0 {
		t.Errorf("GPU geomean speedup at 1%% = %v, want ≥ 1", gm1)
	}
	if gm3 < gm1-0.05 {
		t.Errorf("3%% threshold (%v) should allow at least the 1%% speedup (%v)", gm3, gm1)
	}
	c := CPUSpeedup(s)
	cg := c.Measures["cpu_speedup_geomean_3pct"]
	if cg < 1.0 {
		t.Errorf("CPU geomean = %v, want ≥ 1", cg)
	}
	if cg > gm3 {
		t.Errorf("CPU speedup (%v) should not beat GPU speedup (%v): no FP16 on CPU", cg, gm3)
	}
}

func TestFP16OnlyReport(t *testing.T) {
	s := quickSession()
	r := FP16Only(s)
	gm := r.Measures["fp16_speedup_geomean"]
	if gm < 1.2 || gm > 2.2 {
		t.Errorf("FP16-only geomean %v outside plausible band (paper: 1.63x)", gm)
	}
}

func TestTable3(t *testing.T) {
	s := quickSession()
	r := Table3(s)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[1] == "" {
			t.Errorf("%s: empty knob description", row[0])
		}
	}
}

func TestFig3AndTable4(t *testing.T) {
	s := quickSession()
	f := Fig3(s)
	p1 := f.Measures["pi1_speedup_geomean"]
	p2 := f.Measures["pi2_speedup_geomean"]
	em := f.Measures["empirical_speedup_geomean"]
	if p1 < 1 || p2 < 1 || em < 1 {
		t.Errorf("geomeans below 1: Π1=%v Π2=%v emp=%v", p1, p2, em)
	}
	t4 := Table4(s)
	r1 := t4.Measures["pi1_tuning_speedup_geomean"]
	r2 := t4.Measures["pi2_tuning_speedup_geomean"]
	if r1 < 1 || r2 < 1 {
		t.Errorf("predictive tuning should be faster than empirical: Π1-red=%v Π2-red=%v", r1, r2)
	}
}

func TestCurveSize(t *testing.T) {
	s := quickSession()
	r := CurveSize(s)
	if r.Measures["curve_reduction_geomean"] < 1 {
		t.Errorf("curve reduction %v below 1", r.Measures["curve_reduction_geomean"])
	}
}

func TestFig5PowerShape(t *testing.T) {
	s := quickSession()
	r := Fig5(s)
	if got := r.Measures["gpu_power_ratio"]; got < 4 || got > 11 {
		t.Errorf("GPU power ratio = %v, want ~7", got)
	}
	if got := r.Measures["sys_power_ratio"]; got < 1.5 || got > 2.4 {
		t.Errorf("SYS power ratio = %v, want ~1.9", got)
	}
	if len(r.Rows) != 12 {
		t.Errorf("DVFS ladder rows = %d, want 12", len(r.Rows))
	}
}

func TestFig6RuntimeAdaptation(t *testing.T) {
	s := quickSession()
	rows := RunFig6(s, "alexnet2")
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12 frequencies", len(rows))
	}
	last := rows[len(rows)-1]
	if last.BaselineNormTime <= 1.2 {
		t.Errorf("baseline should slow down at 319 MHz, got %v", last.BaselineNormTime)
	}
	// Adaptation must counteract a substantial part of the slowdown.
	if last.AdaptedNormTime >= last.BaselineNormTime {
		t.Errorf("adaptation did nothing: %v vs %v", last.AdaptedNormTime, last.BaselineNormTime)
	}
	// At full frequency there should be no adaptation pressure.
	if rows[0].AdaptedNormTime > 1.1 {
		t.Errorf("at max frequency normalized time = %v, want ~1", rows[0].AdaptedNormTime)
	}
}

// TestRunFig6HealthFaultInjection pins the end-to-end drift story: an
// unmodeled 2x slowdown injected over the second half of the DVFS
// ladder must show up in the runtime tuner's health snapshot — more
// drift alarms than the fault-free run, flagged configurations, and the
// latched recalibration signal — while leaving the fault-free half of
// the rows untouched.
func TestRunFig6HealthFaultInjection(t *testing.T) {
	clean := Quick()
	cleanRows, cleanHealth := RunFig6Health(NewSession(clean), "lenet")

	faulty := Quick()
	faulty.FaultSlowdown = 2
	rows, h := RunFig6Health(NewSession(faulty), "lenet")

	if len(rows) != len(cleanRows) {
		t.Fatalf("row count changed under fault injection: %d vs %d", len(rows), len(cleanRows))
	}
	// The first half of the ladder runs fault-free with identical seeds,
	// so it must reproduce the clean run exactly.
	for i := 0; i < len(rows)/2; i++ {
		if rows[i].AdaptedNormTime != cleanRows[i].AdaptedNormTime {
			t.Errorf("fault leaked into fault-free frequency %d: %v vs %v",
				i, rows[i].AdaptedNormTime, cleanRows[i].AdaptedNormTime)
		}
	}
	// The second half must actually be slower than the clean run.
	last, cleanLast := rows[len(rows)-1], cleanRows[len(cleanRows)-1]
	if last.AdaptedNormTime <= cleanLast.AdaptedNormTime {
		t.Errorf("injected slowdown had no effect: %v vs clean %v",
			last.AdaptedNormTime, cleanLast.AdaptedNormTime)
	}
	if h.DriftAlarms < 1 {
		t.Fatalf("injected 2x slowdown raised no drift alarms:\n%s", h)
	}
	if h.DriftAlarms < cleanHealth.DriftAlarms {
		t.Errorf("fault run has fewer alarms (%d) than the clean run (%d)",
			h.DriftAlarms, cleanHealth.DriftAlarms)
	}
	if !h.RecalibrationNeeded {
		t.Error("injected fault must latch the recalibration signal")
	}
	if len(h.Drifting()) == 0 {
		t.Errorf("no configuration flagged as drifting:\n%s", h)
	}
	if h.Invocations == 0 || h.Latency.Count != int64(h.Invocations) {
		t.Errorf("health latency accounting: %d invocations, latency count %d",
			h.Invocations, h.Latency.Count)
	}
}

func TestFig4InstallTime(t *testing.T) {
	s := quickSession()
	r := Fig4(s)
	p1 := r.Measures["install_energy_pi1_geomean"]
	p2 := r.Measures["install_energy_pi2_geomean"]
	if p1 < 1 || p2 < 1 {
		t.Errorf("install-time energy reductions below 1: Π1=%v Π2=%v", p1, p2)
	}
	// PROMISE should enable energy reductions beyond the software-only
	// tuning's (software-only energy reduction is bounded by ~speedup).
	if p1 < 1.1 && p2 < 1.1 {
		t.Errorf("no meaningful energy reduction from PROMISE: Π1=%v Π2=%v", p1, p2)
	}
}

func TestFirstLayerStudy(t *testing.T) {
	s := quickSession()
	r := FirstLayerStudy(s)
	if r.Measures["benchmarks_total"] < 2 {
		t.Fatalf("expected 2 benchmarks, got %v", r.Measures["benchmarks_total"])
	}
}

func TestPredictorAccuracyAblation(t *testing.T) {
	// QoS is quantized to 1/N on an N-image calibration set, so rank
	// statistics need a somewhat larger set than the Quick config's.
	s := NewSession(Config{
		Benchmarks: []string{"lenet"}, Images: 64, Width: 0.125,
		ImageNetSize: 32, MaxIters: 200, StallLimit: 100, EmpIters: 40,
		NCalibrate: 6, MaxConfigs: 10, Seed: 1,
	})
	r := PredictorAccuracy(s, "lenet", 40)
	rank1 := r.Measures["rank_Π1"]
	rank2 := r.Measures["rank_Π2"]
	// Π1 is the precise model (paper §7.3); Π2 is coarser and at this
	// sample size only needs to avoid being anti-correlated.
	if rank1 < 0.55 {
		t.Errorf("Π1 should rank clearly better than chance: %v", rank1)
	}
	if rank2 < 0.35 {
		t.Errorf("Π2 anti-correlated: %v", rank2)
	}
}

func TestAlphaCalibrationAblation(t *testing.T) {
	s := quickSession()
	r := AlphaCalibration(s, "lenet", 16)
	if r.Measures["rmse_calibrated"] > r.Measures["rmse_alpha1"]*1.5 {
		t.Errorf("calibration should not substantially hurt: %v vs %v",
			r.Measures["rmse_calibrated"], r.Measures["rmse_alpha1"])
	}
}

func TestEpsilonSweepMonotone(t *testing.T) {
	s := quickSession()
	r := EpsilonSweep(s, "lenet")
	prev := -1.0
	for _, row := range r.Rows {
		var size float64
		if _, err := sscan(row[1], &size); err != nil {
			t.Fatalf("bad size %q", row[1])
		}
		if size < prev {
			t.Errorf("PSε size must grow with ε: %v after %v", size, prev)
		}
		prev = size
	}
}

func TestTechniqueAblation(t *testing.T) {
	s := quickSession()
	r := TechniqueAblation(s, "lenet")
	if r.Measures["ensemble_best"] < 1 || r.Measures["random_best"] < 1 {
		t.Errorf("both searches should find ≥1x: %+v", r.Measures)
	}
}

func TestOffsetAblation(t *testing.T) {
	s := quickSession()
	r := OffsetAblation(s, "alexnet2")
	if r.Measures["speedup_all_offsets"] < r.Measures["speedup_offset0"]-0.2 {
		t.Errorf("the larger space should not lose badly: all=%v offset0=%v",
			r.Measures["speedup_all_offsets"], r.Measures["speedup_offset0"])
	}
}

func TestRuntimePoliciesAblation(t *testing.T) {
	s := quickSession()
	r := RuntimePolicies(s, "alexnet2")
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestFig7Composite(t *testing.T) {
	if testing.Short() {
		t.Skip("composite grid is slow")
	}
	s := NewSession(Config{
		Benchmarks: []string{"alexnet2"}, Images: 16, Width: 0.125,
		ImageNetSize: 32, MaxIters: 150, StallLimit: 80, EmpIters: 40,
		NCalibrate: 5, MaxConfigs: 10, Seed: 1,
	})
	r := Fig7(s)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	tight := r.Measures["fig7_tightest_cell_speedup"]
	loose := r.Measures["fig7_loosest_cell_speedup"]
	if loose < tight-0.3 {
		t.Errorf("relaxing both thresholds should not reduce speedup much: tight=%v loose=%v", tight, loose)
	}
}

func TestPruningStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("pruning study is slow")
	}
	s := NewSession(Config{
		Benchmarks: []string{"lenet"}, Images: 24, Width: 0.125,
		ImageNetSize: 32, MaxIters: 200, StallLimit: 100, EmpIters: 60,
		NCalibrate: 6, MaxConfigs: 10, Seed: 1,
	})
	r := Pruning(s)
	if got := r.Measures["pruned_mac_reduction_geomean"]; got < 1 {
		t.Errorf("MAC reduction = %v, want ≥ 1", got)
	}
}

func sscan(s string, v *float64) (int, error) {
	var n float64
	_, err := fmtSscan(s, &n)
	*v = n
	return 1, err
}

func fmtSscan(s string, v *float64) (int, error) {
	var x float64
	n, err := fmt.Sscan(s, &x)
	*v = x
	return n, err
}
