package bench

import (
	"fmt"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pareto"
	"repro/internal/predictor"
	"repro/internal/tensorops"
)

// Table1 regenerates Table 1: benchmarks, layer counts, FP32 baseline
// accuracy and development-time search-space sizes.
func Table1(s *Session) *Report {
	r := &Report{
		Name:   "table1",
		Title:  "CNN benchmarks: layers, baseline accuracy, search space",
		Header: []string{"Network", "Dataset", "Layers", "Accuracy", "SearchSpace"},
	}
	for _, name := range s.Cfg().names() {
		e := s.Entry(name)
		layers := e.bench.Model.Graph.LayerCount()
		space := approx.SearchSpaceSize(e.bench.Model.Graph.OpClasses(), false)
		r.Rows = append(r.Rows, []string{
			name, e.bench.Dataset.Name,
			fmt.Sprint(layers),
			fmt.Sprintf("%.2f%%", e.bench.BaselineAcc),
			fmt.Sprintf("%.0e", space),
		})
	}
	return r
}

// bestAtThreshold picks the best configuration at a ΔQoS threshold,
// trying both predictors (§7.1: "results are reported after trying both
// predictors and choosing the best result") and accumulating over the
// tighter thresholds too: the thresholds are nested, so any configuration
// validated at ΔQoS 1 % is also feasible at 3 %. Points are compared by
// the hardware-agnostic Perf the curves carry.
func (s *Session) bestAtThreshold(name string, deltaQoS float64, allowFP16 bool) (pareto.Point, bool) {
	qosMin := s.CalibBaseline(name) - deltaQoS
	var best pareto.Point
	found := false
	for d := 1.0; d <= deltaQoS; d++ {
		for _, model := range []predictor.Model{predictor.Pi1, predictor.Pi2} {
			res := s.DevTune(name, d, model, allowFP16)
			if pt, ok := res.Curve.Best(qosMin); ok && (!found || pt.Perf > best.Perf) {
				best = pt
				found = true
			}
		}
	}
	return best, found
}

// Fig2 regenerates Figures 2a and 2b: GPU speedups and energy reductions
// with hardware-independent approximations at ΔQoS 1 %, 2 %, 3 %.
func Fig2(s *Session) *Report {
	r := &Report{
		Name:   "fig2",
		Title:  "GPU speedup / energy reduction at ΔQoS 1/2/3% (hw-independent knobs)",
		Header: []string{"Benchmark", "Sp@1%", "Sp@2%", "Sp@3%", "En@1%", "En@2%", "En@3%"},
	}
	gpu := device.NewTX2GPU()
	thresholds := []float64{1, 2, 3}
	speed := map[float64][]float64{}
	energy := map[float64][]float64{}
	for _, name := range s.Cfg().names() {
		e := s.Entry(name)
		row := []string{name}
		vals := map[float64][2]float64{}
		for _, d := range thresholds {
			sp, en := 1.0, 1.0
			if pt, ok := s.bestAtThreshold(name, d, true); ok {
				costs := e.prog.Costs()
				sp = gpu.Time(costs, nil) / gpu.Time(costs, pt.Config)
				en = gpu.Energy(costs, nil) / gpu.Energy(costs, pt.Config)
			}
			vals[d] = [2]float64{sp, en}
			speed[d] = append(speed[d], sp)
			energy[d] = append(energy[d], en)
		}
		for _, d := range thresholds {
			row = append(row, f2(vals[d][0]))
		}
		for _, d := range thresholds {
			row = append(row, f2(vals[d][1]))
		}
		r.Rows = append(r.Rows, row)
	}
	gm := []string{"geomean"}
	for _, d := range thresholds {
		gm = append(gm, f2(Geomean(speed[d])))
	}
	for _, d := range thresholds {
		gm = append(gm, f2(Geomean(energy[d])))
	}
	r.Rows = append(r.Rows, gm)
	r.AddMeasure("gpu_speedup_geomean_1pct", Geomean(speed[1]))
	r.AddMeasure("gpu_speedup_geomean_2pct", Geomean(speed[2]))
	r.AddMeasure("gpu_speedup_geomean_3pct", Geomean(speed[3]))
	r.AddMeasure("gpu_energy_geomean_1pct", Geomean(energy[1]))
	r.AddMeasure("gpu_energy_geomean_2pct", Geomean(energy[2]))
	r.AddMeasure("gpu_energy_geomean_3pct", Geomean(energy[3]))
	r.Notes = append(r.Notes,
		"paper: geomean speedups 2.14/2.23/2.28x, energy 1.99/2.06/2.11x; max speedup 2.75x")
	return r
}

// FP16Only measures the speedup of the FP16-everything configuration on
// the GPU (§7.1: "FP16 alone provides 1.63x speedup ... with little effect
// on accuracy").
func FP16Only(s *Session) *Report {
	r := &Report{
		Name:   "fp16only",
		Title:  "FP16-only configuration on GPU",
		Header: []string{"Benchmark", "Speedup", "ΔQoS(test)"},
	}
	gpu := device.NewTX2GPU()
	var sps []float64
	for _, name := range s.Cfg().names() {
		e := s.Entry(name)
		cfg := approx.Config{}
		for _, op := range e.prog.Ops() {
			cfg[op] = approx.KnobFP16
		}
		costs := e.prog.Costs()
		sp := gpu.Time(costs, nil) / gpu.Time(costs, cfg)
		sps = append(sps, sp)
		testBase := e.prog.Score(core.Test, e.prog.BaselineOut(core.Test))
		testFP16 := e.prog.Score(core.Test, e.prog.Run(cfg, core.Test, nil))
		r.Rows = append(r.Rows, []string{name, f2(sp), f2(testBase - testFP16)})
	}
	r.Rows = append(r.Rows, []string{"geomean", f2(Geomean(sps)), ""})
	r.AddMeasure("fp16_speedup_geomean", Geomean(sps))
	r.Notes = append(r.Notes, "paper: FP16 alone gives 1.63x on GPU with little accuracy effect")
	return r
}

// CPUSpeedup regenerates the §7.1 CPU results: speedups at ΔQoS 1/2/3 %
// using the FP32-only curve (the TX2's ARM cores have no FP16 pipeline).
func CPUSpeedup(s *Session) *Report {
	r := &Report{
		Name:   "cpu",
		Title:  "CPU speedups at ΔQoS 1/2/3% (FP32-only curve)",
		Header: []string{"Benchmark", "Sp@1%", "Sp@2%", "Sp@3%"},
	}
	cpu := device.NewTX2CPU()
	thresholds := []float64{1, 2, 3}
	speed := map[float64][]float64{}
	for _, name := range s.Cfg().names() {
		e := s.Entry(name)
		row := []string{name}
		for _, d := range thresholds {
			sp := 1.0
			if pt, ok := s.bestAtThreshold(name, d, false); ok {
				costs := e.prog.Costs()
				sp = cpu.Time(costs, nil) / cpu.Time(costs, pt.Config)
			}
			row = append(row, f2(sp))
			speed[d] = append(speed[d], sp)
		}
		r.Rows = append(r.Rows, row)
	}
	gm := []string{"geomean"}
	for _, d := range thresholds {
		gm = append(gm, f2(Geomean(speed[d])))
	}
	r.Rows = append(r.Rows, gm)
	r.AddMeasure("cpu_speedup_geomean_1pct", Geomean(speed[1]))
	r.AddMeasure("cpu_speedup_geomean_3pct", Geomean(speed[3]))
	r.Notes = append(r.Notes, "paper: CPU geomeans 1.31/1.38/1.42x (max 1.89x); no FP16 on ARM")
	return r
}

// Table3 regenerates Table 3: the knob-family occurrence counts of the
// best-performing GPU configuration at ΔQoS 3 %.
func Table3(s *Session) *Report {
	r := &Report{
		Name:   "table3",
		Title:  "Approximation knobs of the top GPU configuration at ΔQoS 3%",
		Header: []string{"Benchmark", "Knob occurrences"},
	}
	for _, name := range s.Cfg().names() {
		if pt, ok := s.bestAtThreshold(name, 3, true); ok {
			r.Rows = append(r.Rows, []string{name, pt.Config.FormatGroupCounts()})
		} else {
			r.Rows = append(r.Rows, []string{name, "(none feasible)"})
		}
	}
	r.Notes = append(r.Notes,
		"paper examples: ResNet-18 → FP16:13 perf-50%:6 perf-33%:2 samp-25%:1; first layers least approximable")
	return r
}

// FirstLayerStudy quantifies the §7.2 observation that early layers are
// less amenable to aggressive approximation: it compares the mean
// profiled QoS loss of 50% row perforation on the first versus the last
// convolution of each benchmark.
func FirstLayerStudy(s *Session) *Report {
	r := &Report{
		Name:   "firstlayer",
		Title:  "Profiled ΔQoS of perf-50% on first vs last convolution",
		Header: []string{"Benchmark", "first-conv ΔQoS", "last-conv ΔQoS"},
	}
	var firstWorse int
	var total int
	for _, name := range s.Cfg().names() {
		e := s.Entry(name)
		profiles := s.Profiles(name)
		convs := convOps(e.prog)
		if len(convs) < 2 {
			continue
		}
		knob := approx.PerforationKnob(tensorops.PerfRows, 2, 0, tensorops.FP32)
		dFirst := profiles.DeltaQ[predictor.Key{Op: convs[0], Knob: knob}]
		dLast := profiles.DeltaQ[predictor.Key{Op: convs[len(convs)-1], Knob: knob}]
		r.Rows = append(r.Rows, []string{name, f2(dFirst), f2(dLast)})
		total++
		if dFirst < dLast {
			firstWorse++
		}
	}
	r.AddMeasure("benchmarks_where_first_conv_hurts_more", float64(firstWorse))
	r.AddMeasure("benchmarks_total", float64(total))
	r.Notes = append(r.Notes, "paper: first layers are relatively less amenable to approximations")
	return r
}

func convOps(p core.Program) []int {
	var out []int
	for _, op := range p.Ops() {
		if p.OpClass(op) == approx.OpConv {
			out = append(out, op)
		}
	}
	return out
}
