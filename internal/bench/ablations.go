package bench

import (
	"fmt"
	"math"

	"repro/internal/approx"
	"repro/internal/autotuner"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pareto"
	"repro/internal/predictor"
	"repro/internal/tensor"
)

// Ablation benches for the design choices DESIGN.md §4 calls out.

// PredictorAccuracy measures how well Π1 and Π2 predict measured QoS:
// RMSE and rank (Spearman-ish sign-agreement) over random configurations.
func PredictorAccuracy(s *Session, name string, nSamples int) *Report {
	r := &Report{
		Name:   "predictor_accuracy",
		Title:  fmt.Sprintf("Π1 vs Π2 prediction error on %s", name),
		Header: []string{"Model", "RMSE", "rank-agreement"},
	}
	e := s.Entry(name)
	profiles := s.Profiles(name)
	prob := problemOf(e.prog)
	rng := tensor.NewRNG(s.Cfg().Seed + 77)
	type sample struct {
		cfg  approx.Config
		real float64
	}
	var samples []sample
	for i := 0; i < nSamples; i++ {
		cfg := randomCfg(prob, rng)
		out := e.prog.Run(cfg, core.Calib, nil)
		samples = append(samples, sample{cfg, e.prog.Score(core.Calib, out)})
	}
	scoreFn := func(out *tensor.Tensor) float64 { return e.prog.Score(core.Calib, out) }
	for _, model := range []predictor.Model{predictor.Pi1, predictor.Pi2} {
		var qp *predictor.QoSPredictor
		if model == predictor.Pi1 {
			qp = predictor.NewQoSPredictor(predictor.Pi1, profiles, scoreFn)
		} else {
			qp = predictor.NewQoSPredictor(predictor.Pi2, profiles, nil)
		}
		// Calibrate on the first half, evaluate on the second.
		half := len(samples) / 2
		var calib []predictor.Sample
		for _, sm := range samples[:half] {
			calib = append(calib, predictor.Sample{Cfg: sm.cfg, QoS: sm.real})
		}
		qp.Calibrate(calib)
		eval := samples[half:]
		var sse float64
		agree, pairs := 0, 0
		preds := make([]float64, len(eval))
		for i, sm := range eval {
			preds[i] = qp.Predict(sm.cfg)
			d := preds[i] - sm.real
			sse += d * d
		}
		for i := 0; i < len(eval); i++ {
			for j := i + 1; j < len(eval); j++ {
				//lint:ignore floateq rank agreement skips exactly-tied measured values by identity
				if eval[i].real == eval[j].real {
					continue
				}
				pairs++
				if (preds[i] > preds[j]) == (eval[i].real > eval[j].real) {
					agree++
				}
			}
		}
		rmse := math.Sqrt(sse / float64(len(eval)))
		rank := 0.0
		if pairs > 0 {
			rank = float64(agree) / float64(pairs)
		}
		r.Rows = append(r.Rows, []string{model.String(), f2(rmse), f2(rank)})
		r.AddMeasure(fmt.Sprintf("rmse_%s", model), rmse)
		r.AddMeasure(fmt.Sprintf("rank_%s", model), rank)
	}
	r.Notes = append(r.Notes, "paper: Π1 is more precise; Π2 systematically underestimates loss on some benchmarks")
	return r
}

// AlphaCalibration compares predictor error with α fixed at 1 versus the
// regressed α (§3.3's calibration step).
func AlphaCalibration(s *Session, name string, nSamples int) *Report {
	r := &Report{
		Name:   "alpha_calibration",
		Title:  fmt.Sprintf("Effect of α regression on Π2 prediction error (%s)", name),
		Header: []string{"Variant", "alpha", "RMSE"},
	}
	e := s.Entry(name)
	profiles := s.Profiles(name)
	prob := problemOf(e.prog)
	rng := tensor.NewRNG(s.Cfg().Seed + 78)
	var samples []predictor.Sample
	for i := 0; i < nSamples; i++ {
		cfg := randomCfg(prob, rng)
		out := e.prog.Run(cfg, core.Calib, nil)
		samples = append(samples, predictor.Sample{Cfg: cfg, QoS: e.prog.Score(core.Calib, out)})
	}
	half := len(samples) / 2
	rmseWith := func(alpha float64, calibrate bool) (float64, float64) {
		qp := predictor.NewQoSPredictor(predictor.Pi2, profiles, nil)
		qp.Alpha = alpha
		if calibrate {
			qp.Calibrate(samples[:half])
		}
		var sse float64
		for _, sm := range samples[half:] {
			d := qp.Predict(sm.Cfg) - sm.QoS
			sse += d * d
		}
		return qp.Alpha, math.Sqrt(sse / float64(len(samples)-half))
	}
	a0, r0 := rmseWith(1, false)
	a1, r1 := rmseWith(1, true)
	r.Rows = append(r.Rows,
		[]string{"α = 1 (uncalibrated)", f2(a0), f2(r0)},
		[]string{"α regressed", f2(a1), f2(r1)})
	r.AddMeasure("rmse_alpha1", r0)
	r.AddMeasure("rmse_calibrated", r1)
	return r
}

// EpsilonSweep shows how ε trades curve size against validation workload
// (§3.5: ε1/ε2 control curve quality, size and tuning time).
func EpsilonSweep(s *Session, name string) *Report {
	r := &Report{
		Name:   "epsilon_sweep",
		Title:  fmt.Sprintf("PSε size versus ε (%s, ΔQoS 3%%)", name),
		Header: []string{"ε", "|PSε|"},
	}
	// Re-run the predictive search loop directly, capturing the full
	// candidate cloud, then sweep ε over it (no validation runs needed).
	e := s.Entry(name)
	profiles := s.Profiles(name)
	qosMin := s.CalibBaseline(name) - 3
	prob := problemOf(e.prog)
	qp := predictor.NewQoSPredictor(predictor.Pi2, profiles, nil)
	pp := predictor.NewPerfPredictor(e.prog.Costs())
	tuner := autotuner.New(prob, autotuner.Options{
		MaxIters:   s.cfg.MaxIters,
		StallLimit: s.cfg.StallLimit,
		QoSMin:     qosMin,
		Seed:       s.cfg.Seed + 6,
	})
	var points []pareto.Point
	for !tuner.Done() {
		cfg := tuner.Next()
		q, p := qp.Predict(cfg), pp.Predict(cfg)
		tuner.Report(cfg, autotuner.Feedback{QoS: q, Perf: p})
		if q > qosMin {
			points = append(points, pareto.Point{QoS: q, Perf: p, Config: cfg.Clone()})
		}
	}
	for _, eps := range []float64{0, 0.05, 0.1, 0.25, 0.5, 1, 2} {
		size := len(pareto.RelaxedSet(points, eps))
		r.Rows = append(r.Rows, []string{f2(eps), fmt.Sprint(size)})
		r.AddMeasure(fmt.Sprintf("ps_size_eps_%.2f", eps), float64(size))
	}
	r.AddMeasure("candidates", float64(len(points)))
	return r
}

// TechniqueAblation compares the full ensemble against random search
// alone at equal iteration budgets, on predicted fitness.
func TechniqueAblation(s *Session, name string) *Report {
	r := &Report{
		Name:   "technique_ablation",
		Title:  fmt.Sprintf("Ensemble vs random-only search (%s, ΔQoS 3%%)", name),
		Header: []string{"Search", "best Perf", "iterations"},
	}
	e := s.Entry(name)
	profiles := s.Profiles(name)
	qosMin := s.CalibBaseline(name) - 3
	scoreVariant := func(techniques []string) (float64, int) {
		pol := core.KnobPolicy{AllowFP16: true}
		prob := problemOf(e.prog)
		qp := predictor.NewQoSPredictor(predictor.Pi2, profiles, nil)
		pp := predictor.NewPerfPredictor(e.prog.Costs())
		tuner := autotuner.New(prob, autotuner.Options{
			MaxIters:   s.cfg.MaxIters,
			StallLimit: s.cfg.MaxIters,
			QoSMin:     qosMin,
			Seed:       s.cfg.Seed + 5,
			Techniques: techniques,
		})
		_ = pol
		best := 1.0
		for !tuner.Done() {
			cfg := tuner.Next()
			q := qp.Predict(cfg)
			p := pp.Predict(cfg)
			tuner.Report(cfg, autotuner.Feedback{QoS: q, Perf: p})
			if q > qosMin && p > best {
				best = p
			}
		}
		return best, tuner.Iterations()
	}
	bEns, iEns := scoreVariant(nil)
	bRnd, iRnd := scoreVariant([]string{"random"})
	r.Rows = append(r.Rows,
		[]string{"ensemble", f2(bEns), fmt.Sprint(iEns)},
		[]string{"random-only", f2(bRnd), fmt.Sprint(iRnd)})
	r.AddMeasure("ensemble_best", bEns)
	r.AddMeasure("random_best", bRnd)
	return r
}

// OffsetAblation compares tuning with the full offset dimension against a
// space restricted to offset 0, quantifying §7.2's observation that
// varying start offsets matters.
func OffsetAblation(s *Session, name string) *Report {
	r := &Report{
		Name:   "offset_ablation",
		Title:  fmt.Sprintf("Sampling/perforation offsets: full space vs offset-0 only (%s)", name),
		Header: []string{"Knob space", "best speedup @ΔQoS3%"},
	}
	e := s.Entry(name)
	qosMin := s.CalibBaseline(name) - 3
	gpu := device.NewTX2GPU()
	costs := e.prog.Costs()
	run := func(filter func(approx.Knob) bool) float64 {
		o := s.tuneOptions(qosMin, predictor.Pi2, core.KnobPolicy{AllowFP16: true, Filter: filter})
		o.Profiles = s.Profiles(name)
		res, err := core.PredictiveTune(e.prog, o)
		if err != nil {
			panic(err)
		}
		if pt, ok := res.Curve.Best(qosMin); ok {
			return gpu.Time(costs, nil) / gpu.Time(costs, pt.Config)
		}
		return 1
	}
	full := run(nil)
	zeroOnly := run(func(k approx.Knob) bool {
		if k.Kind == approx.KindSampling || k.Kind == approx.KindPerforation {
			return k.Offset == 0
		}
		return true
	})
	r.Rows = append(r.Rows,
		[]string{"all offsets", f2(full)},
		[]string{"offset 0 only", f2(zeroOnly)})
	r.AddMeasure("speedup_all_offsets", full)
	r.AddMeasure("speedup_offset0", zeroOnly)
	r.Notes = append(r.Notes, "paper §7.2: different start offsets align with more/less important elements")
	return r
}

// RuntimePolicies compares Policy 1 (enforce) and Policy 2 (average) under
// a mid-ladder DVFS slowdown: deadline misses versus average throughput.
func RuntimePolicies(s *Session, name string) *Report {
	r := &Report{
		Name:   "runtime_policies",
		Title:  fmt.Sprintf("Runtime Policy 1 vs Policy 2 (%s)", name),
		Header: []string{"Policy", "avg norm time", "deadline misses", "avg accuracy"},
	}
	e := s.Entry(name)
	qosMin := s.CalibBaseline(name) - 3
	gpu := device.NewTX2GPU()
	costs := e.prog.Costs()
	devRes := s.DevTune(name, 3, predictor.Pi2, true)
	inst, err := core.RefineCurve(e.prog, devRes.Curve, core.InstallOptions{
		Options: s.tuneOptions(qosMin, predictor.Pi2, core.KnobPolicy{AllowFP16: true}),
		Device:  gpu,
	})
	if err != nil {
		panic(err)
	}
	gpu.SetFrequencyMHz(device.Freqs[0])
	target := gpu.Time(costs, nil)
	accCache := map[string]float64{}
	nOps := len(e.bench.Model.Graph.Nodes)

	for _, pol := range []core.Policy{core.PolicyEnforce, core.PolicyAverage} {
		rt, err := core.NewRuntimeTuner(inst.Curve, pol, target, 1, s.cfg.Seed)
		if err != nil {
			panic(err)
		}
		defer rt.Close()
		gpu.SetFrequencyMHz(675) // the paper's worked mid-ladder point
		const batches = 60
		var sumTime, sumAcc float64
		misses := 0
		for b := 0; b < batches; b++ {
			pt := rt.CurrentPoint()
			bt := gpu.Time(costs, pt.Config)
			sumTime += bt
			if bt > target*1.02 {
				misses++
			}
			key := pt.Config.Key(nOps)
			acc, ok := accCache[key]
			if !ok {
				acc = e.prog.Score(core.Test, e.prog.Run(pt.Config, core.Test, nil))
				accCache[key] = acc
			}
			sumAcc += acc
			rt.RecordInvocation(bt)
		}
		r.Rows = append(r.Rows, []string{
			pol.String(), f2(sumTime / float64(batches) / target),
			fmt.Sprint(misses), f2(sumAcc / float64(batches)),
		})
		r.AddMeasure("avg_norm_time_"+pol.String(), sumTime/float64(batches)/target)
		r.AddMeasure("misses_"+pol.String(), float64(misses))
	}
	gpu.SetFrequencyMHz(device.Freqs[0])
	r.Notes = append(r.Notes, "policy 1 suits deadlines (fewer misses); policy 2 matches average throughput with less QoS loss")
	return r
}

// problemOf mirrors core's internal search-space construction for ablation
// use.
func problemOf(p core.Program) autotuner.Problem {
	ops := p.Ops()
	knobs := make(map[int][]approx.KnobID, len(ops))
	pol := core.KnobPolicy{AllowFP16: true}
	for _, op := range ops {
		knobs[op] = core.KnobsFor(p, op, pol)
	}
	return autotuner.Problem{Ops: ops, Knobs: knobs}
}

func randomCfg(prob autotuner.Problem, rng *tensor.RNG) approx.Config {
	cfg := make(approx.Config, len(prob.Ops))
	for _, op := range prob.Ops {
		ks := prob.Knobs[op]
		cfg[op] = ks[rng.Intn(len(ks))]
	}
	return cfg
}
