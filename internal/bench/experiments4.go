package bench

import (
	"fmt"

	"repro/internal/approx"
	"repro/internal/canny"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/predictor"
	"repro/internal/qos"
)

// Fig7 regenerates Figure 7: the combined CNN + Canny benchmark tuned for
// a 3×3 grid of (accuracy, PSNR) threshold pairs; each cell reports the
// best GPU speedup. Only Π2 applies (variable output shapes, §7.6).
func Fig7(s *Session) *Report {
	r := &Report{
		Name:   "fig7",
		Title:  "CNN+Canny: speedups over a grid of (accuracy, PSNR) thresholds",
		Header: []string{"ΔAcc\\PSNR", "PSNR≥30", "PSNR≥25", "PSNR≥20"},
	}
	cfg := s.Cfg()
	scale := models.Scale{Images: cfg.Images, Width: cfg.Width, ImageNetSize: cfg.ImageNetSize, Seed: cfg.Seed}
	b := models.MustBuild("alexnet2", scale)
	gpu := device.NewTX2GPU()

	comp, err := canny.NewComposite(b, 0, 0)
	if err != nil {
		panic(fmt.Sprintf("bench: fig7 composite: %v", err))
	}
	// Thresholds are relative to the calibration-set baseline pair, which
	// differs from the full-set accuracy at small N.
	baseAcc, _ := comp.BaselinePair(core.Calib)

	accDrops := []float64{1, 2, 3}
	psnrMins := []float64{30, 25, 20}
	var firstCell, lastCell float64
	for _, dAcc := range accDrops {
		row := []string{fmt.Sprintf("Δacc %.0f%%", dAcc)}
		for _, pmin := range psnrMins {
			comp.SetThresholds(baseAcc-dAcc, pmin)
			o := s.tuneOptions(0, predictor.Pi2, core.KnobPolicy{AllowFP16: true})
			res, err := core.PredictiveTune(comp, o)
			if err != nil {
				panic(fmt.Sprintf("bench: fig7 tune: %v", err))
			}
			sp := 1.0
			if pt, ok := res.Curve.Best(0); ok {
				costs := comp.Costs()
				sp = gpu.Time(costs, nil) / gpu.Time(costs, pt.Config)
			}
			//lint:ignore floateq loop variables are compared against the exact slice elements they iterate over
			if dAcc == accDrops[0] && pmin == psnrMins[0] {
				firstCell = sp
			}
			//lint:ignore floateq loop variables are compared against the exact slice elements they iterate over
			if dAcc == accDrops[len(accDrops)-1] && pmin == psnrMins[len(psnrMins)-1] {
				lastCell = sp
			}
			row = append(row, f2(sp))
		}
		r.Rows = append(r.Rows, row)
	}
	r.AddMeasure("fig7_tightest_cell_speedup", firstCell)
	r.AddMeasure("fig7_loosest_cell_speedup", lastCell)
	r.Notes = append(r.Notes,
		"paper: speedup increases as either threshold is relaxed; only Π2 applies (variable output shape)")
	return r
}

// Pruning regenerates the §8 preliminary study: magnitude-pruned models
// plus empirical perforation/sampling tuning reduce MACs by a further
// ~1.2–1.3x at under 1 percentage point of accuracy loss relative to the
// pruned model.
func Pruning(s *Session) *Report {
	r := &Report{
		Name:   "pruning",
		Title:  "Approximations on magnitude-pruned models (§8): extra MAC reduction",
		Header: []string{"Benchmark", "pruned-acc", "tuned-acc", "MAC-reduction"},
	}
	cfg := s.Cfg()
	names := []string{"mobilenet", "vgg16_10", "resnet18"}
	if len(cfg.Benchmarks) > 0 {
		names = cfg.Benchmarks
	}
	var reductions []float64
	for _, name := range names {
		scale := models.Scale{Images: cfg.Images, Width: cfg.Width, ImageNetSize: cfg.ImageNetSize, Seed: cfg.Seed + 50}
		b := models.MustBuild(name, scale)
		models.Prune(b.Model, 0.5)
		// Re-plant labels against the pruned model so its accuracy is the
		// §8 baseline ("compared with the pruned model").
		prunedAcc := models.PlantLabels(b.Model, b.Dataset, b.BaselineAcc, 32, cfg.Seed+60)

		calib, test := b.Dataset.Split()
		gp, err := core.NewGraphProgram(b.Model.Graph, calib.Images, test.Images,
			accuracyMetric(calib.Labels), accuracyMetric(test.Labels))
		if err != nil {
			panic(fmt.Sprintf("bench: pruning %s: %v", name, err))
		}
		o := s.tuneOptions(prunedAcc-1, predictor.Pi2, core.KnobPolicy{AllowFP16: false})
		o.MaxIters, o.StallLimit = cfg.EmpIters, cfg.EmpIters
		res, err := core.EmpiricalTune(gp, o)
		if err != nil {
			panic(fmt.Sprintf("bench: pruning tune %s: %v", name, err))
		}
		tunedAcc, macRed := prunedAcc, 1.0
		if pt, ok := res.Curve.Best(prunedAcc - 1); ok {
			tunedAcc = pt.QoS
			in := b.Model.InputShape(1)
			full, _ := b.Model.Graph.TotalMACs(in, nil)
			reduced, _ := b.Model.Graph.TotalMACs(in, func(op int) float64 {
				rc, _ := costFactorsOf(pt.Config.Knob(op))
				return rc
			})
			if reduced > 0 {
				macRed = full / reduced
			}
		}
		reductions = append(reductions, macRed)
		r.Rows = append(r.Rows, []string{name, f2(prunedAcc), f2(tunedAcc), f2(macRed) + "x"})
	}
	r.AddMeasure("pruned_mac_reduction_geomean", Geomean(reductions))
	r.Notes = append(r.Notes, "paper: 1.3x (MobileNet, VGG-16) and 1.2x (ResNet-18) MAC reduction at <1pp loss")
	return r
}

func accuracyMetric(labels []int) qos.Metric { return qos.Accuracy{Labels: labels} }

func costFactorsOf(id approx.KnobID) (rc, rm float64) { return approx.CostFactors(id) }
