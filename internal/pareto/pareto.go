// Package pareto implements the tradeoff-space machinery of §2.1: tradeoff
// points (QoS, Perf, config), the dominance relation ≼, Pareto sets PS
// (Eq. 1), the relaxed sets PSε (Eq. 2), and the tradeoff curves that are
// shipped with application binaries and consumed by the install-time and
// run-time phases.
package pareto

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/approx"
)

// Point is a tradeoff point: the quality-of-service and performance of a
// configuration. Perf is a speedup relative to the program baseline
// (higher is better), matching how the paper reports its curves.
type Point struct {
	QoS    float64       `json:"qos"`
	Perf   float64       `json:"perf"`
	Config approx.Config `json:"config"`
}

// Dominated reports s ≼ o: s has both lower-or-equal QoS and
// lower-or-equal Perf.
func Dominated(s, o Point) bool {
	return s.QoS <= o.QoS && s.Perf <= o.Perf
}

// StrictlyDominated reports s ≺ o: dominated with at least one strict
// inequality.
func StrictlyDominated(s, o Point) bool {
	//lint:ignore floateq the dominance relation of Eq. 1 is defined with exact equality on stored coordinates
	return Dominated(s, o) && (s.QoS != o.QoS || s.Perf != o.Perf)
}

// Dist is the Euclidean distance between two points in the tradeoff space.
func Dist(a, b Point) float64 {
	dq, dp := a.QoS-b.QoS, a.Perf-b.Perf
	return math.Sqrt(dq*dq + dp*dp)
}

// Set computes the Pareto set PS(S) of Eq. 1: the points not strictly
// dominated by any other point. Duplicate (QoS,Perf) pairs are collapsed
// to one representative. The result is sorted by increasing Perf.
func Set(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	sorted := make([]Point, len(points))
	copy(sorted, points)
	// Sort by Perf descending, QoS descending; sweep keeping rising QoS.
	sort.Slice(sorted, func(i, j int) bool {
		//lint:ignore floateq sort comparator orders by exact stored values; ties fall through to QoS
		if sorted[i].Perf != sorted[j].Perf {
			return sorted[i].Perf > sorted[j].Perf
		}
		return sorted[i].QoS > sorted[j].QoS
	})
	var out []Point
	bestQoS := math.Inf(-1)
	lastPerf := math.Inf(1)
	for _, p := range sorted {
		if p.QoS > bestQoS {
			//lint:ignore floateq duplicate collapse compares bit-identical stored Perf values
			if p.Perf == lastPerf && len(out) > 0 {
				// Same Perf, higher QoS cannot happen due to sort order.
				continue
			}
			out = append(out, p)
			bestQoS = p.QoS
			lastPerf = p.Perf
		}
	}
	// ascending Perf for the shipped curve
	sort.Slice(out, func(i, j int) bool { return out[i].Perf < out[j].Perf })
	return out
}

// RelaxedSet computes PSε(S) of Eq. 2: points within Euclidean distance ε
// of some Pareto point. ε = 0 returns points coinciding with the Pareto
// frontier.
func RelaxedSet(points []Point, eps float64) []Point {
	ps := Set(points)
	if len(ps) == 0 {
		return nil
	}
	var out []Point
	for _, p := range points {
		for _, s := range ps {
			if Dist(p, s) <= eps {
				out = append(out, p)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Perf < out[j].Perf })
	return out
}

// EpsilonForLimit returns the smallest ε from a geometric ladder such that
// |PSε(points)| stays at or below limit, mirroring §6.4's "ε1 and ε2 are
// computed per benchmark to limit the maximum number of configurations".
// If even ε = 0 exceeds the limit, the Pareto points closest-packed by
// Perf are trimmed to the limit and 0 is returned.
func EpsilonForLimit(points []Point, limit int) float64 {
	if limit <= 0 {
		panic("pareto: limit must be positive")
	}
	base := Set(points)
	if len(base) > limit {
		return 0
	}
	eps := 0.0
	step := 0.05
	for {
		next := eps + step
		if len(RelaxedSet(points, next)) > limit {
			return eps
		}
		eps = next
		step *= 2
		if eps > 1e6 {
			return eps // everything fits
		}
	}
}

// Trim returns at most limit points, preferring coverage across the Perf
// range: it keeps endpoints and subsamples uniformly.
func Trim(points []Point, limit int) []Point {
	if len(points) <= limit {
		return points
	}
	out := make([]Point, 0, limit)
	for i := 0; i < limit; i++ {
		idx := i * (len(points) - 1) / (limit - 1)
		out = append(out, points[idx])
	}
	return out
}

// Curve is a tradeoff curve: the Pareto (or relaxed) points sorted by
// increasing Perf, as shipped with the program binary. BaselineQoS and
// BaselineTime record the exact-execution reference the Perf speedups are
// relative to.
type Curve struct {
	Program      string  `json:"program"`
	BaselineQoS  float64 `json:"baseline_qos"`
	BaselineTime float64 `json:"baseline_time,omitempty"`
	Points       []Point `json:"points"`
}

// NewCurve builds a curve from points (strictly Pareto-reduced, sorted)
// — the form install-time refinement produces: PS(S*).
func NewCurve(program string, baselineQoS float64, points []Point) *Curve {
	return &Curve{Program: program, BaselineQoS: baselineQoS, Points: Set(points)}
}

// NewRelaxedCurve builds a curve keeping every supplied point (sorted by
// Perf) — the form development-time tuning ships: PSε₂ deliberately
// retains near-Pareto points because their development-time Perf values
// are hardware-agnostic predictions, and a predicted-dominated point may
// win once measured on the target device (§2.2).
func NewRelaxedCurve(program string, baselineQoS float64, points []Point) *Curve {
	sorted := make([]Point, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Perf < sorted[j].Perf })
	return &Curve{Program: program, BaselineQoS: baselineQoS, Points: sorted}
}

// Len returns the number of points.
func (c *Curve) Len() int { return len(c.Points) }

// Best returns the highest-Perf point with QoS ≥ minQoS, or false if none
// qualifies.
func (c *Curve) Best(minQoS float64) (Point, bool) {
	for i := len(c.Points) - 1; i >= 0; i-- {
		if c.Points[i].QoS >= minQoS {
			return c.Points[i], true
		}
	}
	return Point{}, false
}

// AtLeastPerf returns the lowest-Perf point with Perf ≥ target using
// binary search (runtime Policy 1, §5: O(log |PS|)). The boolean is false
// when no point reaches the target.
func (c *Curve) AtLeastPerf(target float64) (Point, bool) {
	i := sort.Search(len(c.Points), func(i int) bool { return c.Points[i].Perf >= target })
	if i == len(c.Points) {
		return Point{}, false
	}
	return c.Points[i], true
}

// Bracket returns the neighboring points below and above a Perf target
// (runtime Policy 2, §5). ok is false when the curve is empty. If the
// target falls outside the curve's range both returns are the nearest
// endpoint.
func (c *Curve) Bracket(target float64) (below, above Point, ok bool) {
	if len(c.Points) == 0 {
		return Point{}, Point{}, false
	}
	i := sort.Search(len(c.Points), func(i int) bool { return c.Points[i].Perf >= target })
	switch i {
	case 0:
		return c.Points[0], c.Points[0], true
	case len(c.Points):
		last := c.Points[len(c.Points)-1]
		return last, last, true
	default:
		return c.Points[i-1], c.Points[i], true
	}
}

// Marshal serializes the curve to JSON for shipping with the binary.
func (c *Curve) Marshal() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// UnmarshalCurve restores a shipped curve, re-sorting defensively.
func UnmarshalCurve(data []byte) (*Curve, error) {
	var c Curve
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("pareto: bad curve: %w", err)
	}
	sort.Slice(c.Points, func(i, j int) bool { return c.Points[i].Perf < c.Points[j].Perf })
	return &c, nil
}
