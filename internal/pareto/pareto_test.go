package pareto

import (
	"testing"
	"testing/quick"

	"repro/internal/approx"
)

func pts(vals ...[2]float64) []Point {
	out := make([]Point, len(vals))
	for i, v := range vals {
		out[i] = Point{QoS: v[0], Perf: v[1], Config: approx.Config{0: approx.KnobID(i % 2)}}
	}
	return out
}

func TestDominance(t *testing.T) {
	a := Point{QoS: 80, Perf: 1.5}
	b := Point{QoS: 85, Perf: 2.0}
	if !Dominated(a, b) || !StrictlyDominated(a, b) {
		t.Error("a should be strictly dominated by b")
	}
	if Dominated(b, a) {
		t.Error("b is not dominated by a")
	}
	if StrictlyDominated(a, a) {
		t.Error("a point does not strictly dominate itself")
	}
	if !Dominated(a, a) {
		t.Error("≼ is reflexive")
	}
}

func TestSetBasic(t *testing.T) {
	points := pts(
		[2]float64{90, 1.0}, // pareto (best QoS)
		[2]float64{85, 1.5}, // pareto
		[2]float64{84, 1.4}, // dominated by (85,1.5)
		[2]float64{80, 2.0}, // pareto
		[2]float64{70, 1.2}, // dominated
	)
	ps := Set(points)
	if len(ps) != 3 {
		t.Fatalf("|PS| = %d, want 3: %+v", len(ps), ps)
	}
	// ascending by Perf
	for i := 1; i < len(ps); i++ {
		if ps[i].Perf <= ps[i-1].Perf {
			t.Error("Pareto set should be sorted by increasing Perf")
		}
		if ps[i].QoS >= ps[i-1].QoS {
			t.Error("along the frontier QoS must decrease as Perf increases")
		}
	}
}

func TestSetEmpty(t *testing.T) {
	if Set(nil) != nil {
		t.Error("empty input should give empty set")
	}
}

// Property: no member of PS(S) is strictly dominated by any point of S,
// and every point of S is dominated-or-equal by some member of PS(S).
func TestSetInvariants(t *testing.T) {
	f := func(raw [][2]float64) bool {
		if len(raw) == 0 {
			return true
		}
		points := make([]Point, len(raw))
		for i, v := range raw {
			points[i] = Point{QoS: clamp(v[0]), Perf: clamp(v[1])}
		}
		ps := Set(points)
		for _, s := range ps {
			for _, o := range points {
				if StrictlyDominated(s, o) {
					return false
				}
			}
		}
		for _, o := range points {
			covered := false
			for _, s := range ps {
				if Dominated(o, s) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func clamp(v float64) float64 {
	if v != v || v > 1e6 || v < -1e6 {
		return 0
	}
	return v
}

// Property: PSε ⊇ PS for every ε ≥ 0, and PSε grows with ε.
func TestRelaxedSetMonotone(t *testing.T) {
	points := pts(
		[2]float64{90, 1.0}, [2]float64{85, 1.5}, [2]float64{84.9, 1.45},
		[2]float64{80, 2.0}, [2]float64{60, 1.1}, [2]float64{79, 1.9},
	)
	ps := Set(points)
	r0 := RelaxedSet(points, 0)
	r1 := RelaxedSet(points, 0.2)
	r2 := RelaxedSet(points, 100)
	if len(r0) < len(ps) {
		t.Error("PS0 must contain PS")
	}
	if len(r1) < len(r0) || len(r2) < len(r1) {
		t.Error("PSε must grow with ε")
	}
	if len(r2) != len(points) {
		t.Error("huge ε must include everything")
	}
}

func TestEpsilonForLimit(t *testing.T) {
	var points []Point
	for i := 0; i < 100; i++ {
		points = append(points, Point{QoS: 90 - float64(i)*0.1, Perf: 1 + float64(i)*0.01})
	}
	// All 100 are on the frontier; asking for ≤ 100 keeps ε small, ≤ 10
	// forces ε = 0 with trimming handled by the caller.
	eps := EpsilonForLimit(points, 200)
	if len(RelaxedSet(points, eps)) > 200 {
		t.Error("EpsilonForLimit exceeded the limit")
	}
	if got := EpsilonForLimit(points, 10); got != 0 {
		t.Errorf("over-full frontier should give ε=0, got %v", got)
	}
}

func TestTrim(t *testing.T) {
	var points []Point
	for i := 0; i < 97; i++ {
		points = append(points, Point{QoS: float64(i), Perf: float64(i)})
	}
	tr := Trim(points, 50)
	if len(tr) != 50 {
		t.Fatalf("Trim len = %d, want 50", len(tr))
	}
	if tr[0].Perf != points[0].Perf || tr[49].Perf != points[96].Perf {
		t.Error("Trim must keep the endpoints")
	}
	same := Trim(points[:10], 50)
	if len(same) != 10 {
		t.Error("Trim should not pad short inputs")
	}
}

func TestCurveBestAndSearch(t *testing.T) {
	points := pts(
		[2]float64{90, 1.0}, [2]float64{88, 1.4}, [2]float64{85, 1.9}, [2]float64{80, 2.5},
	)
	c := NewCurve("bench", 90.5, points)
	best, ok := c.Best(84)
	if !ok || best.Perf != 1.9 {
		t.Fatalf("Best(84) = %+v, %v; want Perf 1.9", best, ok)
	}
	if _, ok := c.Best(95); ok {
		t.Error("no point has QoS ≥ 95")
	}
	p, ok := c.AtLeastPerf(1.5)
	if !ok || p.Perf != 1.9 {
		t.Fatalf("AtLeastPerf(1.5) = %+v, want Perf 1.9", p)
	}
	if _, ok := c.AtLeastPerf(3.0); ok {
		t.Error("no point reaches Perf 3.0")
	}
}

func TestCurveBracket(t *testing.T) {
	points := pts([2]float64{90, 1.0}, [2]float64{85, 1.5}, [2]float64{80, 2.0})
	c := NewCurve("bench", 90, points)
	lo, hi, ok := c.Bracket(1.3)
	if !ok || lo.Perf != 1.0 || hi.Perf != 1.5 {
		t.Fatalf("Bracket(1.3) = %v..%v", lo.Perf, hi.Perf)
	}
	lo, hi, _ = c.Bracket(0.5)
	if lo.Perf != 1.0 || hi.Perf != 1.0 {
		t.Error("below-range bracket should clamp to first point")
	}
	lo, hi, _ = c.Bracket(9)
	if lo.Perf != 2.0 || hi.Perf != 2.0 {
		t.Error("above-range bracket should clamp to last point")
	}
	empty := &Curve{}
	if _, _, ok := empty.Bracket(1); ok {
		t.Error("empty curve cannot bracket")
	}
}

func TestCurveSerializationRoundTrip(t *testing.T) {
	points := []Point{
		{QoS: 88.5, Perf: 1.7, Config: approx.Config{0: 1, 3: 10}},
		{QoS: 84.2, Perf: 2.3, Config: approx.Config{0: 1, 3: 31}},
	}
	c := NewCurve("resnet18", 89.4, points)
	c.BaselineTime = 0.125
	data, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCurve(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Program != "resnet18" || back.BaselineQoS != 89.4 || back.BaselineTime != 0.125 {
		t.Fatalf("metadata lost: %+v", back)
	}
	if back.Len() != c.Len() {
		t.Fatalf("points lost: %d vs %d", back.Len(), c.Len())
	}
	for i := range back.Points {
		if back.Points[i].QoS != c.Points[i].QoS || back.Points[i].Perf != c.Points[i].Perf {
			t.Fatal("point values changed in round trip")
		}
		if !back.Points[i].Config.Equal(c.Points[i].Config, 4) {
			t.Fatal("config changed in round trip")
		}
	}
}

func TestUnmarshalCurveRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalCurve([]byte("not json")); err == nil {
		t.Error("garbage must not parse")
	}
}
