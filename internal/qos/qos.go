// Package qos defines the quality-of-service metrics of §2.1/§6.1: a QoS
// metric maps a program's output tensor (plus a reference — gold labels or
// a gold output tensor) to a scalar where higher is better. Classification
// accuracy serves the CNN benchmarks; PSNR serves the image-processing
// benchmark; mean squared error backs the predictive models.
package qos

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Metric scores a program output; higher is better. The reference data
// (labels, gold tensors) is captured inside the metric instance.
type Metric interface {
	Name() string
	Score(out *tensor.Tensor) float64
}

// Accuracy is classification accuracy in percent against gold labels: the
// output is an (N,K) probability or logit tensor and the prediction is the
// per-row argmax.
type Accuracy struct {
	Labels []int
}

// Name implements Metric.
func (a Accuracy) Name() string { return "accuracy" }

// Score returns the percentage of rows whose argmax matches the label.
func (a Accuracy) Score(out *tensor.Tensor) float64 {
	preds := out.RowArgMax()
	if len(preds) != len(a.Labels) {
		panic(fmt.Sprintf("qos: %d predictions vs %d labels", len(preds), len(a.Labels)))
	}
	if len(preds) == 0 {
		return 0
	}
	correct := 0
	for i, p := range preds {
		if p == a.Labels[i] {
			correct++
		}
	}
	return 100 * float64(correct) / float64(len(preds))
}

// PSNR is peak signal-to-noise ratio in dB against a gold output tensor.
// Following §6.1 (with signals normalized to a unit peak) it is
// -10·log10(MSE); higher is better.
type PSNR struct {
	Gold *tensor.Tensor
}

// Name implements Metric.
func (p PSNR) Name() string { return "psnr" }

// Score returns the PSNR of out against the gold tensor.
func (p PSNR) Score(out *tensor.Tensor) float64 {
	return PSNRValue(out, p.Gold)
}

// PSNRValue computes -10·log10(MSE(x, gold)), capped at 100 dB for
// identical tensors.
func PSNRValue(x, gold *tensor.Tensor) float64 {
	mse := tensor.MSE(x, gold)
	if mse <= 1e-10 {
		return 100
	}
	return -10 * math.Log10(mse)
}

// NegMSE scores by negative mean squared error against a gold tensor
// (higher is better); it is the metric form the predictive models use for
// image pipelines ("mean square error (exponential of PSNR)", §6.1).
type NegMSE struct {
	Gold *tensor.Tensor
}

// Name implements Metric.
func (n NegMSE) Name() string { return "neg_mse" }

// Score returns -MSE(out, gold).
func (n NegMSE) Score(out *tensor.Tensor) float64 {
	return -tensor.MSE(out, n.Gold)
}

// Delta returns the QoS degradation of score relative to a baseline score,
// in the paper's ΔQoS convention (positive = loss).
func Delta(baseline, score float64) float64 { return baseline - score }
