package qos

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestAccuracy(t *testing.T) {
	out := tensor.FromSlice([]float32{
		0.9, 0.1, // pred 0
		0.2, 0.8, // pred 1
		0.6, 0.4, // pred 0
		0.3, 0.7, // pred 1
	}, 4, 2)
	m := Accuracy{Labels: []int{0, 1, 1, 1}}
	if got := m.Score(out); got != 75 {
		t.Errorf("accuracy = %v, want 75", got)
	}
	if m.Name() != "accuracy" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestAccuracyLengthMismatchPanics(t *testing.T) {
	out := tensor.New(2, 3)
	m := Accuracy{Labels: []int{0}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on label/prediction mismatch")
		}
	}()
	m.Score(out)
}

func TestPSNRIdenticalIsCapped(t *testing.T) {
	x := tensor.FromSlice([]float32{0.1, 0.9}, 2)
	if got := PSNRValue(x, x.Clone()); got != 100 {
		t.Errorf("identical PSNR = %v, want 100 (cap)", got)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	x := tensor.FromSlice([]float32{0.5, 0.5}, 2)
	y := tensor.FromSlice([]float32{0.6, 0.4}, 2)
	// MSE = 0.01 → PSNR = -10*log10(0.01) = 20 dB.
	if got := PSNRValue(x, y); math.Abs(got-20) > 1e-6 {
		t.Errorf("PSNR = %v, want 20", got)
	}
}

func TestPSNRDecreasesWithError(t *testing.T) {
	gold := tensor.New(100)
	g := tensor.NewRNG(1)
	g.FillUniform(gold, 0, 1)
	small, big := gold.Clone(), gold.Clone()
	noise := tensor.New(100)
	g.FillNormal(noise, 0, 0.01)
	small.Add(noise)
	noise2 := tensor.New(100)
	g.FillNormal(noise2, 0, 0.2)
	big.Add(noise2)
	m := PSNR{Gold: gold}
	if m.Score(small) <= m.Score(big) {
		t.Error("larger error should give lower PSNR")
	}
}

func TestNegMSE(t *testing.T) {
	gold := tensor.FromSlice([]float32{1, 2}, 2)
	m := NegMSE{Gold: gold}
	if got := m.Score(gold.Clone()); got != 0 {
		t.Errorf("exact output: NegMSE = %v, want 0", got)
	}
	off := tensor.FromSlice([]float32{2, 3}, 2)
	if got := m.Score(off); got != -1 {
		t.Errorf("NegMSE = %v, want -1", got)
	}
}

func TestDelta(t *testing.T) {
	if Delta(90, 88.5) != 1.5 {
		t.Error("Delta should be baseline - score")
	}
}
