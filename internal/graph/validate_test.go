package graph

import (
	"strings"
	"testing"

	"repro/internal/tensor"
	"repro/internal/tensorops"
)

// hasErr reports whether any collected error message contains substr.
func hasErr(errs []error, substr string) bool {
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			return true
		}
	}
	return false
}

func TestValidateDeepCleanGraph(t *testing.T) {
	gr := tinyNet(tensor.NewRNG(1))
	if errs := gr.ValidateDeep(tensor.NewShape(2, 1, 8, 8)); len(errs) != 0 {
		t.Fatalf("clean graph reported %d errors: %v", len(errs), errs)
	}
}

func TestValidateDeepDanglingEdge(t *testing.T) {
	gr := New("dangling")
	gr.ReLU(gr.InputID())
	// Corrupt the edge list to point past the graph.
	gr.Nodes[1].Inputs[0] = 7
	errs := gr.ValidateDeep(tensor.NewShape(1, 1, 4, 4))
	if !hasErr(errs, "dangling") {
		t.Fatalf("dangling edge not reported: %v", errs)
	}
}

func TestValidateDeepCycle(t *testing.T) {
	gr := New("cyclic")
	a := gr.ReLU(gr.InputID())
	b := gr.Tanh(a)
	// Introduce a back edge a ← b: a cycle independent of ID order.
	gr.Nodes[a].Inputs[0] = b
	errs := gr.ValidateDeep(tensor.NewShape(1, 1, 4, 4))
	if !hasErr(errs, "cycle") {
		t.Fatalf("cycle not reported: %v", errs)
	}
}

func TestValidateDeepShapeMismatch(t *testing.T) {
	gr := New("shapes")
	fl := gr.Flatten(gr.InputID())
	// Weight inner dimension 99 disagrees with the flattened input (16).
	w := tensor.New(99, 10)
	gr.MatMul(fl, w, nil, "fc")
	errs := gr.ValidateDeep(tensor.NewShape(1, 1, 4, 4))
	if !hasErr(errs, "inner dim") {
		t.Fatalf("shape mismatch not reported: %v", errs)
	}
}

func TestValidateDeepOperandSizeMismatch(t *testing.T) {
	gr := New("addmismatch")
	a := gr.ReLU(gr.InputID())
	b := gr.MaxPool(gr.InputID(), tensorops.PoolParams{KH: 2, KW: 2})
	gr.Add(a, b) // different element counts after pooling
	errs := gr.ValidateDeep(tensor.NewShape(1, 1, 4, 4))
	if !hasErr(errs, "operand sizes") {
		t.Fatalf("add operand mismatch not reported: %v", errs)
	}
}

func TestValidateDeepUnreachableNode(t *testing.T) {
	gr := New("dead")
	a := gr.ReLU(gr.InputID())
	gr.Tanh(gr.InputID()) // dead branch
	gr.Output = a
	errs := gr.ValidateDeep(tensor.NewShape(1, 1, 4, 4))
	if !hasErr(errs, "unreachable") {
		t.Fatalf("unreachable node not reported: %v", errs)
	}
}

func TestValidateDeepMissingWeights(t *testing.T) {
	gr := New("noweights")
	gr.Nodes = append(gr.Nodes, &Node{ID: 1, Kind: OpConv, Name: "conv", Inputs: []int{0}})
	gr.Output = 1
	errs := gr.ValidateDeep(tensor.NewShape(1, 1, 4, 4))
	if !hasErr(errs, "lacks weights") {
		t.Fatalf("missing weights not reported: %v", errs)
	}
}

func TestValidateDeepCollectsMultiple(t *testing.T) {
	gr := New("multi")
	gr.Nodes = append(gr.Nodes,
		&Node{ID: 1, Kind: OpConv, Name: "c", Inputs: []int{0}}, // no weights
		&Node{ID: 2, Kind: OpAdd, Name: "a", Inputs: []int{1}},  // arity 1, want 2
	)
	gr.Output = 2
	errs := gr.ValidateDeep(tensor.NewShape(1, 1, 4, 4))
	if len(errs) < 2 {
		t.Fatalf("expected multiple collected errors, got %v", errs)
	}
}
