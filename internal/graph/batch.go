package graph

import (
	"repro/internal/approx"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Batch-sharded data-parallel execution. Every tensor operator in the IR
// computes each batch element independently (convolution, pooling, NMS
// and hysteresis are per-image; matmul and softmax are per-row; the
// elementwise ops trivially so), so a batch-N execution can split into
// contiguous batch shards, run the whole graph per shard on separate
// workers, and concatenate the outputs in index order. Because every
// kernel's per-element arithmetic is independent of the batch dimension
// (GEMM row dispatch differences are themselves bit-identical — see the
// engine notes in tensorops/gemm.go), the sharded output is bit-identical
// to the serial one; TestExecuteShardedBitIdentical pins this with a
// sha256 over the output bytes.

// shardable reports whether this (input, cfg) execution may split across
// batch shards. Excluded: sub-batch inputs; configurations with PROMISE
// knobs (the perturbation RNG stream is sequential over the whole batch)
// or INT8 knobs (activation quantization picks a per-tensor scale over
// the whole batch, coupling the shards); graphs whose output is the input
// node itself; and moments when the worker pool is already saturated (an
// outer parallel loop is running — the shards would serialize inline and
// only add concatenation overhead).
func (g *Graph) shardable(input *tensor.Tensor, cfg approx.Config) bool {
	if input.Rank() < 2 || input.Dim(0) < 2 {
		return false
	}
	if g.Nodes[g.Output].Kind == OpInput {
		return false
	}
	if parallel.Available() == 0 {
		return false
	}
	for _, n := range g.Nodes {
		switch approx.MustLookup(cfg.Knob(n.ID)).Kind {
		case approx.KindPromise, approx.KindInt8:
			return false
		}
	}
	return true
}

// executeSharded splits the batch into contiguous shards (one per worker,
// mirroring parallel.ForChunked's partition), runs the full graph on each
// shard concurrently, and concatenates the shard outputs in batch order
// into a fresh tensor.
func (g *Graph) executeSharded(input *tensor.Tensor, cfg approx.Config, opts ExecOptions) *tensor.Tensor {
	return g.executeShardedWorkers(input, cfg, opts, parallel.Workers())
}

// executeShardedWorkers is executeSharded with an explicit shard-count
// target, so the shard/concatenate path is exercisable (and its
// bit-identity pinnable) regardless of the host's core count.
func (g *Graph) executeShardedWorkers(input *tensor.Tensor, cfg approx.Config, opts ExecOptions, workers int) *tensor.Tensor {
	n := input.Dim(0)
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	numChunks := (n + chunk - 1) / chunk
	if numChunks <= 1 {
		return g.executeOnce(input, cfg, opts)
	}

	item := input.Elems() / n
	dims := input.Shape().Dims()
	xd := input.Data()
	outs := make([]*tensor.Tensor, numChunks)
	parallel.For(numChunks, func(ci int) {
		lo := ci * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		sdims := append([]int{hi - lo}, dims[1:]...)
		shard := tensor.FromSlice(xd[lo*item:hi*item], sdims...)
		outs[ci] = g.executeOnce(shard, cfg, opts)
	})

	first := outs[0]
	per := first.Elems() / first.Dim(0)
	odims := append([]int{n}, first.Shape().Dims()[1:]...)
	out := tensor.New(odims...)
	od := out.Data()
	for ci, so := range outs {
		copy(od[ci*chunk*per:], so.Data())
	}
	return out
}
