package graph

import (
	"fmt"

	"repro/internal/tensor"
)

// ValidateDeep runs the full static validation of a graph against a
// program input shape and returns every problem found (empty slice when
// the graph is well formed). Unlike Validate — which stops at the first
// structural violation and is meant for builder-time assertions —
// ValidateDeep collects all findings so `approxlint -ir` and program-load
// checks can report a complete picture at once. It checks:
//
//   - node IDs matching slice positions and a valid output node;
//   - dangling edges: inputs referencing node IDs outside the graph;
//   - cycles, detected by DFS over the edge lists independent of ID order
//     (the builder enforces topological IDs, but deserialized or
//     hand-crafted graphs may not);
//   - arity and parameter presence per op kind (weights on conv/matmul,
//     two operands on add/mul, three on nms);
//   - nodes unreachable from the output (dead subgraphs inflate cost
//     tables and search spaces silently);
//   - shape consistency across every dataflow edge, via InferShapes.
func (g *Graph) ValidateDeep(in tensor.Shape) []error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("graph %q: "+format, append([]any{g.Name}, args...)...))
	}
	if len(g.Nodes) == 0 {
		report("empty")
		return errs
	}
	for i, n := range g.Nodes {
		if n == nil {
			report("node %d is nil", i)
			return errs
		}
		if n.ID != i {
			report("node at position %d has ID %d", i, n.ID)
		}
	}
	if g.Output < 0 || g.Output >= len(g.Nodes) {
		report("output id %d outside [0,%d)", g.Output, len(g.Nodes))
	}

	// Dangling edges and per-kind arity/parameter checks.
	dangling := false
	for _, n := range g.Nodes {
		for _, id := range n.Inputs {
			if id < 0 || id >= len(g.Nodes) {
				report("node %q edge to nonexistent node %d (dangling)", n.Name, id)
				dangling = true
			}
		}
		switch n.Kind {
		case OpInput:
			if n.ID != 0 {
				report("interior input node %d", n.ID)
			}
			if len(n.Inputs) != 0 {
				report("input node has %d inputs", len(n.Inputs))
			}
		case OpConv, OpMatMul:
			if n.Weight == nil {
				report("node %q (%s) lacks weights", n.Name, n.Kind)
			}
			if len(n.Inputs) != 1 {
				report("node %q (%s) has %d inputs, want 1", n.Name, n.Kind, len(n.Inputs))
			}
		case OpAdd, OpMul:
			if len(n.Inputs) != 2 {
				report("node %q (%s) has %d inputs, want 2", n.Name, n.Kind, len(n.Inputs))
			}
		case OpNMS:
			if len(n.Inputs) != 3 {
				report("node %q (nms) has %d inputs, want 3", n.Name, len(n.Inputs))
			}
		default:
			if len(n.Inputs) != 1 {
				report("node %q (%s) has %d inputs, want 1", n.Name, n.Kind, len(n.Inputs))
			}
		}
	}
	if dangling {
		// Cycle/reachability walks index Nodes by edge target; a dangling
		// edge would panic them, and shape inference is meaningless.
		return errs
	}

	// Cycle detection: DFS with tricolor marking over the Inputs edges.
	// Deliberately ignores ID ordering so a back-edge in a deserialized
	// graph is reported as a cycle, not only as an ordering violation.
	const (
		white = 0 // unvisited
		grey  = 1 // on the DFS stack
		black = 2 // done
	)
	color := make([]int, len(g.Nodes))
	var stack []int
	var dfs func(id int) bool
	dfs = func(id int) bool {
		color[id] = grey
		stack = append(stack, id)
		for _, in := range g.Nodes[id].Inputs {
			switch color[in] {
			case grey:
				// Render the cycle from the back-edge target onward.
				var names []string
				seen := false
				for _, s := range stack {
					if s == in {
						seen = true
					}
					if seen {
						names = append(names, g.Nodes[s].Name)
					}
				}
				names = append(names, g.Nodes[in].Name)
				report("cycle: %v", names)
				return true
			case white:
				if dfs(in) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[id] = black
		return false
	}
	cyclic := false
	for id := range g.Nodes {
		if color[id] == white {
			stack = stack[:0]
			if dfs(id) {
				cyclic = true
				break // one cycle report is enough; shapes are meaningless
			}
		}
	}

	// Topological-ID ordering (the executor's single forward sweep relies
	// on it even for acyclic graphs).
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if in >= n.ID {
				report("node %q input %d breaks topological order", n.Name, in)
			}
		}
	}

	// Reachability from the output.
	if !cyclic && g.Output >= 0 && g.Output < len(g.Nodes) {
		reach := make([]bool, len(g.Nodes))
		var mark func(id int)
		mark = func(id int) {
			if reach[id] {
				return
			}
			reach[id] = true
			for _, in := range g.Nodes[id].Inputs {
				mark(in)
			}
		}
		mark(g.Output)
		for _, n := range g.Nodes {
			if !reach[n.ID] {
				report("node %q (id %d) is unreachable from output %d", n.Name, n.ID, g.Output)
			}
		}
	}

	// Shape consistency across every edge. InferShapes itself reports
	// mismatches (conv rank, matmul inner dim, add/mul operand sizes) but
	// stops at the first; run node-by-node to collect them all.
	if !cyclic && len(errs) == 0 {
		shapes := make([]tensor.Shape, len(g.Nodes))
		for _, n := range g.Nodes {
			s, err := g.inferNode(n, shapes, in)
			if err != nil {
				errs = append(errs, err)
				return errs // downstream shapes depend on this one
			}
			shapes[n.ID] = s
		}
	}
	return errs
}
