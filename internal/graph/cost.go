package graph

import (
	"fmt"

	"repro/internal/tensor"
)

// NodeCost holds the analytically computed baseline operation counts of
// one node (§3.4 of the paper): Nc compute operations and Nm memory
// operations (element loads/stores). Approximation knobs divide these by
// their reduction factors Rc and Rm.
type NodeCost struct {
	ID     int
	Nc, Nm float64
}

// InferShapes propagates the shape of the program input through the graph,
// returning the output shape of each node. It performs no tensor
// computation.
func (g *Graph) InferShapes(in tensor.Shape) ([]tensor.Shape, error) {
	shapes := make([]tensor.Shape, len(g.Nodes))
	for _, n := range g.Nodes {
		var err error
		shapes[n.ID], err = g.inferNode(n, shapes, in)
		if err != nil {
			return nil, err
		}
	}
	return shapes, nil
}

func (g *Graph) inferNode(n *Node, shapes []tensor.Shape, in tensor.Shape) (tensor.Shape, error) {
	shapeOf := func(id int) tensor.Shape { return shapes[id] }
	switch n.Kind {
	case OpInput:
		return in, nil
	case OpConv:
		x := shapeOf(n.Inputs[0])
		if x.Rank() != 4 {
			return tensor.Shape{}, fmt.Errorf("graph %q: conv %q input rank %d", g.Name, n.Name, x.Rank())
		}
		p := n.Conv.Norm()
		ho := tensor.ConvOutDim(x.Dim(2), n.Weight.Dim(2), p.StrideH, p.PadH)
		wo := tensor.ConvOutDim(x.Dim(3), n.Weight.Dim(3), p.StrideW, p.PadW)
		return tensor.NewShape(x.Dim(0), n.Weight.Dim(0), ho, wo), nil
	case OpMatMul:
		x := shapeOf(n.Inputs[0])
		nBatch := x.Dim(0)
		k := x.Elems() / nBatch
		if n.Weight.Dim(0) != k {
			return tensor.Shape{}, fmt.Errorf("graph %q: matmul %q inner dim %d vs weight %v", g.Name, n.Name, k, n.Weight.Shape())
		}
		return tensor.NewShape(nBatch, n.Weight.Dim(1)), nil
	case OpMaxPool, OpAvgPool:
		x := shapeOf(n.Inputs[0])
		p := n.Pool.Norm()
		ho := tensor.ConvOutDim(x.Dim(2), p.KH, p.StrideH, p.PadH)
		wo := tensor.ConvOutDim(x.Dim(3), p.KW, p.StrideW, p.PadW)
		return tensor.NewShape(x.Dim(0), x.Dim(1), ho, wo), nil
	case OpReduce:
		x := shapeOf(n.Inputs[0])
		return tensor.NewShape(x.Dim(0), x.Dim(1)), nil
	case OpSoftmax, OpFlatten:
		x := shapeOf(n.Inputs[0])
		return tensor.NewShape(x.Dim(0), x.Elems()/x.Dim(0)), nil
	case OpAdd, OpMul:
		a, b := shapeOf(n.Inputs[0]), shapeOf(n.Inputs[1])
		if a.Elems() != b.Elems() {
			return tensor.Shape{}, fmt.Errorf("graph %q: %s %q operand sizes %d vs %d", g.Name, n.Kind, n.Name, a.Elems(), b.Elems())
		}
		return a, nil
	default: // activations, batchnorm: shape-preserving
		return shapeOf(n.Inputs[0]), nil
	}
}

// Costs returns the baseline (un-approximated) compute and memory
// operation counts for every node, given the program input shape. This is
// the closed-form calculation of §3.4 — "computed analytically for each
// tensor op ... using input tensor sizes, weight tensor sizes, strides,
// padding, etc."
func (g *Graph) Costs(in tensor.Shape) ([]NodeCost, error) {
	shapes, err := g.InferShapes(in)
	if err != nil {
		return nil, err
	}
	costs := make([]NodeCost, len(g.Nodes))
	for _, n := range g.Nodes {
		out := shapes[n.ID]
		var inElems float64
		if len(n.Inputs) > 0 {
			inElems = float64(shapes[n.Inputs[0]].Elems())
		}
		outElems := float64(out.Elems())
		c := NodeCost{ID: n.ID}
		switch n.Kind {
		case OpInput, OpFlatten:
			// free
		case OpConv:
			p := n.Conv.Norm()
			cig := n.Weight.Dim(1)
			kh, kw := n.Weight.Dim(2), n.Weight.Dim(3)
			_ = p
			macs := outElems * float64(cig*kh*kw)
			c.Nc = 2 * macs
			c.Nm = inElems + float64(n.Weight.Elems()) + outElems
			if n.Bias != nil {
				c.Nc += outElems
				c.Nm += float64(n.Bias.Elems()) + outElems
			}
			if n.Act != ActNone {
				c.Nc += outElems
			}
		case OpMatMul:
			k := float64(n.Weight.Dim(0))
			c.Nc = 2 * outElems * k
			c.Nm = inElems + float64(n.Weight.Elems()) + outElems
			if n.Bias != nil {
				c.Nc += outElems
				c.Nm += float64(n.Bias.Elems()) + outElems
			}
			if n.Act != ActNone {
				c.Nc += outElems
			}
		case OpMaxPool, OpAvgPool:
			pp := n.Pool.Norm()
			c.Nc = outElems * float64(pp.KH*pp.KW)
			c.Nm = inElems + outElems
		case OpReduce:
			c.Nc = inElems
			c.Nm = inElems + outElems
		case OpReLU, OpClippedReLU:
			c.Nc = outElems
			c.Nm = 2 * outElems
		case OpTanh:
			c.Nc = 8 * outElems // transcendental
			c.Nm = 2 * outElems
		case OpBatchNorm:
			c.Nc = 2 * outElems
			c.Nm = 2 * outElems
		case OpSoftmax:
			c.Nc = 5 * outElems
			c.Nm = 2 * outElems
		case OpAdd, OpMul:
			c.Nc = outElems
			c.Nm = 3 * outElems
		case OpAbs:
			c.Nc = outElems
			c.Nm = 2 * outElems
		case OpSqrt:
			c.Nc = 4 * outElems
			c.Nm = 2 * outElems
		case OpNMS:
			c.Nc = 12 * outElems // direction quantization + comparisons
			c.Nm = 5 * outElems  // mag + gx + gy + neighbor reads + store
		case OpHysteresis:
			c.Nc = 10 * outElems
			c.Nm = 3 * outElems
		}
		costs[n.ID] = c
	}
	return costs, nil
}

// TotalMACs returns the multiply-accumulate count of the convolution and
// dense nodes under a configuration's sampling/perforation knobs — the
// metric of the §8 pruning study.
func (g *Graph) TotalMACs(in tensor.Shape, rcOf func(op int) float64) (float64, error) {
	costs, err := g.Costs(in)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, n := range g.Nodes {
		if n.Kind != OpConv && n.Kind != OpMatMul {
			continue
		}
		rc := 1.0
		if rcOf != nil {
			rc = rcOf(n.ID)
		}
		total += costs[n.ID].Nc / 2 / rc
	}
	return total, nil
}
