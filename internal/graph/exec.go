package graph

import (
	"fmt"
	"math"

	"repro/internal/approx"
	"repro/internal/obs"
	"repro/internal/promise"
	"repro/internal/tensor"
	"repro/internal/tensorops"
)

// ExecOptions controls a graph execution.
type ExecOptions struct {
	// RNG supplies the reproducible noise stream for PROMISE knobs. It is
	// required whenever the configuration maps any op to a PROMISE level.
	RNG *tensor.RNG
	// Trace, when non-nil, parents a per-execution span (and, while the
	// tracer's graph-detail budget lasts, per-node child spans) under it.
	Trace *obs.Span
}

// Execute runs the program on input under the given configuration and
// returns the output tensor. Unmapped ops run exactly in FP32. Execute
// panics on a structurally invalid knob assignment (use ValidateConfig to
// vet configurations from external sources first).
//
// Batched inputs are sharded across the parallel worker pool when the
// graph and configuration permit it (see shardable); the sharded result
// is bit-identical to the serial one, so callers cannot observe which
// path ran. Traced executions stay serial to keep per-node spans intact.
func (g *Graph) Execute(input *tensor.Tensor, cfg approx.Config, opts ExecOptions) *tensor.Tensor {
	sp, detail := g.traceExec(opts.Trace, "full")
	if !detail {
		opts.Trace = nil
	} else {
		opts.Trace = sp
	}
	var out *tensor.Tensor
	if opts.Trace == nil && g.shardable(input, cfg) {
		out = g.executeSharded(input, cfg, opts)
	} else {
		out = g.executeOnce(input, cfg, opts)
	}
	sp.End()
	return out
}

// executeOnce is the single-goroutine graph sweep behind Execute.
func (g *Graph) executeOnce(input *tensor.Tensor, cfg approx.Config, opts ExecOptions) *tensor.Tensor {
	vals := make([]*tensor.Tensor, len(g.Nodes))
	for _, n := range g.Nodes {
		switch n.Kind {
		case OpInput:
			vals[n.ID] = input
		default:
			vals[n.ID] = g.execNode(n, vals, cfg.Knob(n.ID), opts)
		}
	}
	return vals[g.Output]
}

// ExecuteAll runs the program and returns every node's value (indexed by
// node ID). The per-node values let profile collection re-execute only the
// suffix of the graph affected by approximating a single operator.
func (g *Graph) ExecuteAll(input *tensor.Tensor, cfg approx.Config, opts ExecOptions) []*tensor.Tensor {
	sp, detail := g.traceExec(opts.Trace, "all")
	if !detail {
		opts.Trace = nil
	} else {
		opts.Trace = sp
	}
	vals := make([]*tensor.Tensor, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Kind == OpInput {
			vals[n.ID] = input
			continue
		}
		vals[n.ID] = g.execNode(n, vals, cfg.Knob(n.ID), opts)
	}
	sp.End()
	return vals
}

// ExecuteFrom re-executes the nodes with ID ≥ from, reusing base values
// for earlier nodes, and returns the program output. base must come from
// ExecuteAll on the same input; it is not mutated. This is the fast path
// of profile collection (§3.2): approximating op k only requires
// recomputing the graph suffix.
func (g *Graph) ExecuteFrom(base []*tensor.Tensor, from int, cfg approx.Config, opts ExecOptions) *tensor.Tensor {
	if len(base) != len(g.Nodes) {
		panic(fmt.Sprintf("graph: base has %d values for %d nodes", len(base), len(g.Nodes)))
	}
	sp, detail := g.traceExec(opts.Trace, "suffix")
	if !detail {
		opts.Trace = nil
	} else {
		opts.Trace = sp.With("from", from)
	}
	vals := make([]*tensor.Tensor, len(g.Nodes))
	copy(vals, base)
	for _, n := range g.Nodes {
		if n.ID < from || n.Kind == OpInput {
			continue
		}
		vals[n.ID] = g.execNode(n, vals, cfg.Knob(n.ID), opts)
	}
	sp.End()
	return vals[g.Output]
}

func (g *Graph) execNode(n *Node, vals []*tensor.Tensor, kid approx.KnobID, opts ExecOptions) *tensor.Tensor {
	knob := approx.MustLookup(kid)
	observeNode(knob)
	if opts.Trace != nil {
		nsp := opts.Trace.Child("node:"+nodeLabel(n)).With("op", n.ID).With("knob", knob.Name())
		defer nsp.End()
	}
	x := vals[n.Inputs[0]]
	prec := knob.Prec

	switch n.Kind {
	case OpConv:
		// The bias/activation/quantization epilogue fuses into the GEMM
		// writeback for the variants whose raw output needs no
		// post-processing; perforation (interpolates first), PROMISE
		// (perturbs first) and int8 apply it in a single in-place pass.
		ep := n.fusedEpilogue()
		var out *tensor.Tensor
		switch knob.Kind {
		case approx.KindBaseline, approx.KindFP16:
			return tensorops.Conv2DFused(x, n.Weight, n.Conv, prec, ep)
		case approx.KindSampling:
			return tensorops.Conv2DFilterSamplingFused(x, n.Weight, n.Conv, knob.Stride, knob.Offset, prec, ep)
		case approx.KindPerforation:
			out = tensorops.Conv2DPerforated(x, n.Weight, n.Conv, knob.Dir, knob.Stride, knob.Offset, prec)
		case approx.KindPromise:
			out = tensorops.Conv2D(x, n.Weight, n.Conv, tensorops.FP32)
			g.perturb(out, knob.Level, opts)
			prec = tensorops.FP32
		case approx.KindInt8:
			out = tensorops.Conv2DInt8(x, n.Weight, n.Conv)
			prec = tensorops.FP32
		default:
			panicKnob(n, knob)
		}
		return tensorops.ApplyEpilogue(out, ep, prec)

	case OpMatMul:
		ep := n.fusedEpilogue()
		var out *tensor.Tensor
		switch knob.Kind {
		case approx.KindBaseline, approx.KindFP16:
			return tensorops.MatMulFused(tensorops.Flatten(x), n.Weight, prec, ep)
		case approx.KindPromise:
			out = tensorops.MatMul(tensorops.Flatten(x), n.Weight, tensorops.FP32)
			g.perturb(out, knob.Level, opts)
			prec = tensorops.FP32
		case approx.KindInt8:
			out = tensorops.MatMulInt8(tensorops.Flatten(x), n.Weight)
			prec = tensorops.FP32
		default:
			panicKnob(n, knob)
		}
		return tensorops.ApplyEpilogue(out, ep, prec)

	case OpMaxPool, OpAvgPool:
		num, den := 1, 1
		switch knob.Kind {
		case approx.KindBaseline, approx.KindFP16:
		case approx.KindReduceSampling:
			num, den = knob.RatioNum, knob.RatioDen
		default:
			panicKnob(n, knob)
		}
		if n.Kind == OpMaxPool {
			return tensorops.MaxPoolSampled(x, n.Pool, num, den, prec)
		}
		return tensorops.AvgPoolSampled(x, n.Pool, num, den, prec)

	case OpReduce:
		num, den := 1, 1
		switch knob.Kind {
		case approx.KindBaseline, approx.KindFP16:
		case approx.KindReduceSampling:
			num, den = knob.RatioNum, knob.RatioDen
		default:
			panicKnob(n, knob)
		}
		return tensorops.Reduce(x, n.Reduce, num, den, prec)

	case OpReLU:
		requirePrecOnly(n, knob)
		return tensorops.ReLU(x, prec)
	case OpClippedReLU:
		requirePrecOnly(n, knob)
		return tensorops.ClippedReLU(x, n.Clip, prec)
	case OpTanh:
		requirePrecOnly(n, knob)
		return tensorops.Tanh(x, prec)
	case OpBatchNorm:
		requirePrecOnly(n, knob)
		return tensorops.BatchNorm(x, n.BN, prec)
	case OpSoftmax:
		requirePrecOnly(n, knob)
		return tensorops.Softmax(tensorops.Flatten(x), prec)
	case OpAdd:
		requirePrecOnly(n, knob)
		return tensorops.Add(x, vals[n.Inputs[1]], prec)
	case OpFlatten:
		return tensorops.Flatten(x)
	case OpAbs:
		requirePrecOnly(n, knob)
		return tensorops.Abs(x, prec)
	case OpSqrt:
		requirePrecOnly(n, knob)
		return tensorops.Sqrt(x, prec)
	case OpMul:
		requirePrecOnly(n, knob)
		return tensorops.Mul(x, vals[n.Inputs[1]], prec)
	case OpNMS:
		requirePrecOnly(n, knob)
		return tensorops.NonMaxSuppress(x, vals[n.Inputs[1]], vals[n.Inputs[2]], prec)
	case OpHysteresis:
		requirePrecOnly(n, knob)
		return tensorops.Hysteresis(x, n.ThreshLo, n.ThreshHi, prec)
	default:
		panic(fmt.Sprintf("graph: unknown op kind %d", n.Kind))
	}
}

// fusedEpilogue maps the node's bias and activation onto the kernel-level
// epilogue descriptor consumed by the fused tensorops entry points.
func (n *Node) fusedEpilogue() tensorops.Epilogue {
	ep := tensorops.Epilogue{Bias: n.Bias, Clip: n.Clip}
	switch n.Act {
	case ActReLU:
		ep.Act = tensorops.ActReLU
	case ActClippedReLU:
		ep.Act = tensorops.ActClippedReLU
	case ActTanh:
		ep.Act = tensorops.ActTanh
	}
	return ep
}

// InvalidateWeight records an in-place mutation of the node's weight
// tensor: it advances the tensor's cache generation and drops every
// derived operand (packed panels, quantized copies, sampled filters) from
// the process-wide pack cache. Any pass that rewrites Weight.Data() —
// StandardizeWeights, models.Prune — must call it, or cached executions
// would keep using the old weights.
func (n *Node) InvalidateWeight() {
	if n.Weight == nil {
		return
	}
	n.Weight.InvalidateCache()
	tensorops.InvalidatePacked(n.Weight)
}

// PrepackWeights marks every conv/matmul weight cacheable and eagerly
// builds the derived operands the execution paths will ask for — packed
// GEMM panels for dense weights (both precisions) and FP16 quantized
// copies for conv weights — so the first tuning executions start warm.
// Idempotent (later calls hit the cache); returns the number of cache
// entries ensured.
func (g *Graph) PrepackWeights() int {
	count := 0
	for _, n := range g.Nodes {
		if n.Weight == nil {
			continue
		}
		switch n.Kind {
		case OpConv:
			n.Weight.MarkCacheable()
			count += tensorops.PrepackConvWeight(n.Weight)
		case OpMatMul:
			n.Weight.MarkCacheable()
			count += tensorops.PrepackMatMulWeight(n.Weight)
		}
	}
	return count
}

func (g *Graph) perturb(out *tensor.Tensor, level int, opts ExecOptions) {
	if opts.RNG == nil {
		panic("graph: PROMISE knob requires ExecOptions.RNG")
	}
	promise.Perturb(out, level, opts.RNG)
}

func requirePrecOnly(n *Node, k approx.Knob) {
	if k.Kind != approx.KindBaseline && k.Kind != approx.KindFP16 {
		panicKnob(n, k)
	}
}

func panicKnob(n *Node, k approx.Knob) {
	panic(fmt.Sprintf("graph: knob %s not applicable to %s node %q", k.Name(), n.Kind, n.Name))
}

// StandardizeWeights folds an inference-time normalization into every
// convolution and dense node: running a probe batch through the network,
// it rescales each node's weights and bias so the pre-activation outputs
// have per-channel zero mean and unit variance on the probe. This is the
// build-time equivalent of folding trained batch-norm statistics into the
// preceding convolution — standard practice in deployed inference — and
// keeps deep synthetic networks well-conditioned so their predictions vary
// across inputs.
func (g *Graph) StandardizeWeights(probe *tensor.Tensor) {
	vals := make([]*tensor.Tensor, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Kind == OpInput {
			vals[n.ID] = probe
			continue
		}
		if n.Kind == OpConv || n.Kind == OpMatMul {
			raw := g.rawLinear(n, vals)
			standardizeNode(n, raw)
			// The weights just changed in place: stale packed panels and
			// quantized copies must never serve another execution.
			n.InvalidateWeight()
		}
		vals[n.ID] = g.execNode(n, vals, approx.KnobFP32, ExecOptions{})
	}
}

// rawLinear computes a conv/matmul node's pre-activation output (weights
// applied, bias added, activation NOT applied) in exact FP32.
func (g *Graph) rawLinear(n *Node, vals []*tensor.Tensor) *tensor.Tensor {
	x := vals[n.Inputs[0]]
	ep := tensorops.Epilogue{Bias: n.Bias}
	if n.Kind == OpConv {
		return tensorops.Conv2DFused(x, n.Weight, n.Conv, tensorops.FP32, ep)
	}
	return tensorops.MatMulFused(tensorops.Flatten(x), n.Weight, tensorops.FP32, ep)
}

// standardizeNode rescales the node's weights/bias so the given raw output
// would have had per-output-channel zero mean and unit variance.
func standardizeNode(n *Node, raw *tensor.Tensor) {
	channels := raw.Dim(1)
	mean := make([]float64, channels)
	m2 := make([]float64, channels)
	count := make([]float64, channels)
	d := raw.Data()
	if n.Kind == OpConv {
		nb, sp := raw.Dim(0), raw.Dim(2)*raw.Dim(3)
		for img := 0; img < nb; img++ {
			for c := 0; c < channels; c++ {
				seg := d[(img*channels+c)*sp : (img*channels+c+1)*sp]
				for _, v := range seg {
					mean[c] += float64(v)
					m2[c] += float64(v) * float64(v)
					count[c]++
				}
			}
		}
	} else {
		nb := raw.Dim(0)
		for img := 0; img < nb; img++ {
			row := d[img*channels : (img+1)*channels]
			for c, v := range row {
				mean[c] += float64(v)
				m2[c] += float64(v) * float64(v)
				count[c]++
			}
		}
	}
	for c := 0; c < channels; c++ {
		mean[c] /= count[c]
		variance := m2[c]/count[c] - mean[c]*mean[c]
		std := math.Sqrt(math.Max(variance, 1e-6))
		if std < 1e-3 {
			std = 1e-3
		}
		scaleOutputChannel(n, c, float32(1/std), float32(-mean[c]/std))
	}
}

// scaleOutputChannel applies w' = w*scale, b' = b*scale + shift to output
// channel c of a conv (weight rows) or matmul (weight columns) node.
func scaleOutputChannel(n *Node, c int, scale, shift float32) {
	wd := n.Weight.Data()
	if n.Kind == OpConv {
		fvol := n.Weight.Elems() / n.Weight.Dim(0)
		seg := wd[c*fvol : (c+1)*fvol]
		for i := range seg {
			seg[i] *= scale
		}
	} else {
		m := n.Weight.Dim(1)
		k := n.Weight.Dim(0)
		for r := 0; r < k; r++ {
			wd[r*m+c] *= scale
		}
	}
	if n.Bias == nil {
		if n.Kind == OpConv {
			n.Bias = tensor.New(n.Weight.Dim(0))
		} else {
			n.Bias = tensor.New(n.Weight.Dim(1))
		}
	}
	bd := n.Bias.Data()
	bd[c] = bd[c]*scale + shift
}

// ValidateConfig checks that every knob in cfg is applicable to the node
// it targets; it guards against malformed shipped configurations.
func (g *Graph) ValidateConfig(cfg approx.Config) error {
	for op, kid := range cfg {
		if op < 0 || op >= len(g.Nodes) {
			return fmt.Errorf("graph %q: config references op %d of %d", g.Name, op, len(g.Nodes))
		}
		knob, ok := approx.Lookup(kid)
		if !ok {
			return fmt.Errorf("graph %q: unknown knob %d on op %d", g.Name, kid, op)
		}
		n := g.Nodes[op]
		class := n.Kind.Class()
		ok = false
		if knob.Kind == approx.KindInt8 {
			ok = class == approx.OpConv || class == approx.OpMatMul
		} else {
			for _, valid := range approx.KnobsFor(class, true) {
				if valid == kid {
					ok = true
					break
				}
			}
		}
		if !ok {
			return fmt.Errorf("graph %q: knob %s not applicable to %s node %q", g.Name, knob.Name(), n.Kind, n.Name)
		}
	}
	return nil
}
