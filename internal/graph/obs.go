package graph

import (
	"repro/internal/approx"
	"repro/internal/obs"
)

// Execution metrics (§6-style per-op attribution): every node execution
// counts a kernel invocation, split into exact vs approximated and by
// knob kind. Counting is always on — it is a handful of wait-free atomic
// adds next to kernels that run for microseconds to milliseconds.
var (
	mKernels   = obs.NewCounter("graph.kernel_invocations")
	mOpsExact  = obs.NewCounter("graph.ops_exact")
	mOpsApprox = obs.NewCounter("graph.ops_approximated")
	mExecs     = obs.NewCounter("graph.executions")

	// kindCounters caches the per-knob-kind counters so the hot path
	// avoids the CounterVec map lookup.
	kindCounters [int(approx.KindInt8) + 1]*obs.Counter
)

func init() {
	vec := obs.NewCounterVec("graph.kernel_invocations_by_knob")
	for k := range kindCounters {
		kindCounters[k] = vec.With(approx.Kind(k).String())
	}
}

// observeNode records the metrics for one node execution.
func observeNode(knob approx.Knob) {
	mKernels.Inc()
	if knob.IsBaseline() {
		mOpsExact.Inc()
	} else {
		mOpsApprox.Inc()
	}
	if int(knob.Kind) < len(kindCounters) {
		kindCounters[knob.Kind].Inc()
	}
}

// traceExec opens the per-execution span (nil without a trace parent) and
// reports whether per-node child spans should be recorded, honoring the
// tracer's graph-detail budget.
func (g *Graph) traceExec(parent *obs.Span, mode string) (*obs.Span, bool) {
	mExecs.Inc()
	if parent == nil {
		return nil, false
	}
	sp := parent.Child("graph:"+g.Name).With("mode", mode).With("nodes", len(g.Nodes))
	return sp, sp.AcquireDetail()
}

// nodeLabel names a node span.
func nodeLabel(n *Node) string {
	if n.Name != "" {
		return n.Name
	}
	return n.Kind.String()
}
