package graph

import (
	"testing"

	"repro/internal/approx"
	"repro/internal/tensor"
)

// TestConcatSplitRoundTrip pins the assembly plumbing: heterogeneous
// request batches concatenate in order and split back bit-identically.
func TestConcatSplitRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(5)
	mk := func(n int) *tensor.Tensor {
		x := tensor.New(n, 1, 8, 8)
		rng.FillNormal(x, 0, 1)
		return x
	}
	ins := []*tensor.Tensor{mk(1), mk(3), mk(2), mk(1)}
	batch, sizes, err := ConcatBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Dim(0) != 7 {
		t.Fatalf("batch dim = %d, want 7", batch.Dim(0))
	}
	want := []int{1, 3, 2, 1}
	for i, s := range sizes {
		if s != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
	parts, err := SplitBatch(batch, sizes)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		if outDigest(p) != outDigest(ins[i]) {
			t.Errorf("request %d round-trip differs", i)
		}
	}
}

// TestConcatBatchValidation pins the error paths: empty input sets,
// mismatched item shapes, and split sizes that do not cover the batch.
func TestConcatBatchValidation(t *testing.T) {
	if _, _, err := ConcatBatch(nil); err == nil {
		t.Error("empty input set must error")
	}
	a := tensor.New(2, 1, 8, 8)
	bad := tensor.New(2, 1, 4, 4)
	if _, _, err := ConcatBatch([]*tensor.Tensor{a, bad}); err == nil {
		t.Error("mismatched item dims must error")
	}
	if _, err := SplitBatch(a, []int{3}); err == nil {
		t.Error("split sizes not covering the batch must error")
	}
	if _, err := SplitBatch(a, []int{2, 0}); err == nil {
		t.Error("non-positive split size must error")
	}
	// A single well-formed batch passes through without copying.
	same, sizes, err := ConcatBatch([]*tensor.Tensor{a})
	if err != nil || same != a || sizes[0] != 2 {
		t.Errorf("single-batch fast path: %v %v %v", same, sizes, err)
	}
}

// TestConcatSplitMatchesIndividual pins the serving-path invariant: a
// coalesced execution followed by a split is bit-identical to executing
// each request alone, under both the exact configuration and an
// approximate one — the same per-batch-element operator independence the
// sharded executor relies on.
func TestConcatSplitMatchesIndividual(t *testing.T) {
	rng := tensor.NewRNG(17)
	gr := tinyNet(rng)
	mk := func(n int) *tensor.Tensor {
		x := tensor.New(n, 1, 8, 8)
		rng.FillNormal(x, 0, 1)
		return x
	}
	ins := []*tensor.Tensor{mk(2), mk(1), mk(4)}

	convOp := gr.ApproxOps()[0]
	cfgs := map[string]approx.Config{
		"exact": nil,
		"fp16":  {convOp: approx.KnobFP16},
	}
	for name, cfg := range cfgs {
		batch, sizes, err := ConcatBatch(ins)
		if err != nil {
			t.Fatal(err)
		}
		parts, err := SplitBatch(gr.Execute(batch, cfg, ExecOptions{}), sizes)
		if err != nil {
			t.Fatal(err)
		}
		for i, in := range ins {
			solo := gr.Execute(in, cfg, ExecOptions{})
			if outDigest(parts[i]) != outDigest(solo) {
				t.Errorf("%s: request %d differs between coalesced and individual execution", name, i)
			}
		}
	}
}
