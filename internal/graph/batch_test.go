package graph

import (
	"crypto/sha256"
	"math"
	"testing"

	"repro/internal/approx"
	"repro/internal/parallel"
	"repro/internal/tensor"
	"repro/internal/tensorops"
)

func outDigest(t *tensor.Tensor) [32]byte {
	h := sha256.New()
	buf := make([]byte, 4)
	for _, v := range t.Data() {
		bits := math.Float32bits(v)
		buf[0] = byte(bits)
		buf[1] = byte(bits >> 8)
		buf[2] = byte(bits >> 16)
		buf[3] = byte(bits >> 24)
		h.Write(buf)
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// TestExecuteShardedBitIdentical pins the batch-parallel contract: for
// every shardable configuration, Execute (which may split the batch across
// workers) must produce the same sha256 over the output bits as the serial
// single-shard path.
func TestExecuteShardedBitIdentical(t *testing.T) {
	rng := tensor.NewRNG(31)
	gr := tinyNet(rng)
	in := tensor.New(11, 1, 8, 8) // odd batch: uneven final shard
	rng.FillNormal(in, 0, 1)
	convOp := gr.ApproxOps()[0]
	fcOp := gr.ApproxOps()[4]

	cases := []struct {
		name string
		cfg  approx.Config
	}{
		{"baseline", nil},
		{"fp16-conv", approx.Config{convOp: approx.KnobFP16}},
		{"fp16-fc", approx.Config{fcOp: approx.KnobFP16}},
		{"sampling", approx.Config{convOp: approx.SamplingKnob(2, 0, tensorops.FP32)}},
		{"perforation", approx.Config{convOp: approx.PerforationKnob(tensorops.PerfRows, 2, 0, tensorops.FP16)}},
	}
	for _, tc := range cases {
		serial := gr.executeOnce(in, tc.cfg, ExecOptions{})
		// Force multiple shard counts regardless of the host's core count:
		// 3 workers gives uneven shards [0,4) [4,8) [8,11), 11 gives
		// single-image shards.
		for _, workers := range []int{2, 3, 11} {
			sharded := gr.executeShardedWorkers(in, tc.cfg, ExecOptions{}, workers)
			if !serial.Shape().Equal(sharded.Shape()) {
				t.Fatalf("%s workers=%d: shape %v vs %v", tc.name, workers, sharded.Shape(), serial.Shape())
			}
			if outDigest(serial) != outDigest(sharded) {
				t.Errorf("%s workers=%d: sharded output differs from serial (sha256 mismatch)", tc.name, workers)
			}
		}
		// And the public entry point (whichever path it picks) agrees too.
		if outDigest(gr.Execute(in, tc.cfg, ExecOptions{})) != outDigest(serial) {
			t.Errorf("%s: Execute differs from serial", tc.name)
		}
	}
}

// TestShardableExclusions: the configurations whose semantics couple batch
// elements (PROMISE's sequential noise stream, INT8's whole-tensor
// activation scale) and degenerate inputs must refuse to shard.
func TestShardableExclusions(t *testing.T) {
	rng := tensor.NewRNG(37)
	gr := tinyNet(rng)
	in := tensor.New(8, 1, 8, 8)
	rng.FillNormal(in, 0, 1)
	convOp := gr.ApproxOps()[0]

	// The positive case depends on the worker pool having capacity, which a
	// single-core host never has.
	if parallel.Available() > 0 && !gr.shardable(in, nil) {
		t.Fatal("plain batch config should shard")
	}
	single := tensor.New(1, 1, 8, 8)
	if gr.shardable(single, nil) {
		t.Error("batch of one sharded")
	}
	if gr.shardable(in, approx.Config{convOp: approx.PromiseKnob(4)}) {
		t.Error("PROMISE config sharded (RNG stream is batch-sequential)")
	}
	if gr.shardable(in, approx.Config{convOp: approx.KnobInt8}) {
		t.Error("INT8 config sharded (activation scale couples the batch)")
	}
}

// TestStandardizeWeightsInvalidatesCache: standardization mutates weights
// in place after FP16 executions have warmed the pack cache; a later FP16
// execution must see the new weights, matching a twin graph that was
// standardized before any cache warmup.
func TestStandardizeWeightsInvalidatesCache(t *testing.T) {
	build := func() *Graph { return tinyNet(tensor.NewRNG(41)) }
	gr := build()
	twin := build()

	rng := tensor.NewRNG(43)
	in := tensor.New(4, 1, 8, 8)
	rng.FillNormal(in, 0, 1)
	cfg := approx.Config{}
	for _, op := range gr.ApproxOps() {
		if k := gr.Nodes[op].Kind; k == OpConv || k == OpMatMul {
			cfg[op] = approx.KnobFP16
		}
	}

	// Warm the pack cache with the pre-standardization weights.
	gr.PrepackWeights()
	gr.Execute(in, cfg, ExecOptions{})

	gr.StandardizeWeights(in)
	twin.StandardizeWeights(in)

	got := gr.Execute(in, cfg, ExecOptions{})
	want := twin.Execute(in, cfg, ExecOptions{})
	if outDigest(got) != outDigest(want) {
		t.Fatal("FP16 execution after StandardizeWeights used stale cached panels")
	}
}

// TestPrepackWeightsCounts: every conv/matmul node with a weight registers.
func TestPrepackWeightsCounts(t *testing.T) {
	gr := tinyNet(tensor.NewRNG(47))
	n := gr.PrepackWeights()
	if n != 4 { // conv1 + conv2 (FP16 copies), fc (FP32 + FP16 panels)
		t.Fatalf("PrepackWeights = %d cache entries, want 4", n)
	}
	for _, nd := range gr.Nodes {
		if nd.Weight == nil {
			continue
		}
		if _, _, ok := nd.Weight.CacheKey(); !ok {
			t.Errorf("node %d weight not cacheable after prepack", nd.ID)
		}
	}
}
