package graph

import (
	"math"
	"strings"
	"testing"

	"repro/internal/approx"
	"repro/internal/tensor"
	"repro/internal/tensorops"
)

// tinyNet builds a small conv→pool→conv→fc→softmax network for tests.
func tinyNet(g *tensor.RNG) *Graph {
	gr := New("tiny")
	w1 := tensor.New(4, 1, 3, 3)
	g.FillHe(w1, 9)
	b1 := tensor.New(4)
	g.FillNormal(b1, 0, 0.1)
	c1 := gr.ConvAct(gr.InputID(), w1, b1, tensorops.ConvParams{PadH: 1, PadW: 1}, ActReLU, 0, "conv1")
	p1 := gr.MaxPool(c1, tensorops.PoolParams{KH: 2, KW: 2})
	w2 := tensor.New(8, 4, 3, 3)
	g.FillHe(w2, 36)
	c2 := gr.ConvAct(p1, w2, nil, tensorops.ConvParams{PadH: 1, PadW: 1}, ActReLU, 0, "conv2")
	p2 := gr.MaxPool(c2, tensorops.PoolParams{KH: 2, KW: 2})
	fl := gr.Flatten(p2)
	wf := tensor.New(8*2*2, 10)
	g.FillXavier(wf, 32, 10)
	fc := gr.MatMul(fl, wf, nil, "fc")
	gr.Softmax(fc)
	return gr
}

func TestBuildAndValidate(t *testing.T) {
	gr := tinyNet(tensor.NewRNG(1))
	if err := gr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if gr.LayerCount() != 3 {
		t.Errorf("LayerCount = %d, want 3 (2 conv + 1 fc)", gr.LayerCount())
	}
	ops := gr.ApproxOps()
	// conv1, pool1, conv2, pool2, fc are approximable; softmax/flatten not.
	if len(ops) != 5 {
		t.Errorf("ApproxOps = %v, want 5 entries", ops)
	}
}

func TestExecuteBaselineShapes(t *testing.T) {
	rng := tensor.NewRNG(2)
	gr := tinyNet(rng)
	in := tensor.New(3, 1, 8, 8)
	rng.FillNormal(in, 0, 1)
	out := gr.Execute(in, nil, ExecOptions{})
	if out.Rank() != 2 || out.Dim(0) != 3 || out.Dim(1) != 10 {
		t.Fatalf("output shape %v, want (3x10)", out.Shape())
	}
	// softmax rows sum to 1
	for r := 0; r < 3; r++ {
		var sum float64
		for _, v := range out.Row(r) {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
}

func TestExecuteDeterministic(t *testing.T) {
	rng := tensor.NewRNG(3)
	gr := tinyNet(rng)
	in := tensor.New(2, 1, 8, 8)
	rng.FillNormal(in, 0, 1)
	a := gr.Execute(in, nil, ExecOptions{})
	b := gr.Execute(in, nil, ExecOptions{})
	if !tensor.Equal(a, b, 0) {
		t.Fatal("baseline execution must be deterministic")
	}
}

func TestExecuteWithApproximationsChangesOutput(t *testing.T) {
	rng := tensor.NewRNG(4)
	gr := tinyNet(rng)
	in := tensor.New(2, 1, 8, 8)
	rng.FillNormal(in, 0, 1)
	base := gr.Execute(in, nil, ExecOptions{})
	convOp := gr.ApproxOps()[0]
	for _, kid := range []approx.KnobID{
		approx.KnobFP16,
		approx.SamplingKnob(2, 0, tensorops.FP32),
		approx.PerforationKnob(tensorops.PerfRows, 2, 0, tensorops.FP32),
	} {
		cfg := approx.Config{convOp: kid}
		out := gr.Execute(in, cfg, ExecOptions{})
		if !out.Shape().Equal(base.Shape()) {
			t.Fatalf("knob %d changed output shape", kid)
		}
		if tensor.Equal(out, base, 1e-9) && kid != approx.KnobFP16 {
			t.Errorf("knob %d produced identical output", kid)
		}
	}
}

func TestExecutePromiseNeedsRNG(t *testing.T) {
	rng := tensor.NewRNG(5)
	gr := tinyNet(rng)
	in := tensor.New(1, 1, 8, 8)
	rng.FillNormal(in, 0, 1)
	cfg := approx.Config{gr.ApproxOps()[0]: approx.PromiseKnob(1)}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PROMISE without RNG should panic")
			}
		}()
		gr.Execute(in, cfg, ExecOptions{})
	}()
	out := gr.Execute(in, cfg, ExecOptions{RNG: tensor.NewRNG(6)})
	base := gr.Execute(in, nil, ExecOptions{})
	if tensor.Equal(out, base, 1e-9) {
		t.Error("PROMISE execution should perturb the output")
	}
}

func TestPromiseErrorOrdering(t *testing.T) {
	// Lower voltage levels must produce larger end-to-end output error.
	rng := tensor.NewRNG(7)
	gr := tinyNet(rng)
	in := tensor.New(4, 1, 8, 8)
	rng.FillNormal(in, 0, 1)
	base := gr.Execute(in, nil, ExecOptions{})
	op := gr.ApproxOps()[0]
	var mseP1, mseP7 float64
	for trial := 0; trial < 5; trial++ {
		o1 := gr.Execute(in, approx.Config{op: approx.PromiseKnob(1)}, ExecOptions{RNG: tensor.NewRNG(int64(100 + trial))})
		o7 := gr.Execute(in, approx.Config{op: approx.PromiseKnob(7)}, ExecOptions{RNG: tensor.NewRNG(int64(200 + trial))})
		mseP1 += tensor.MSE(o1, base)
		mseP7 += tensor.MSE(o7, base)
	}
	if mseP1 <= mseP7 {
		t.Errorf("P1 error (%g) should exceed P7 error (%g)", mseP1, mseP7)
	}
}

func TestInvalidKnobPanics(t *testing.T) {
	rng := tensor.NewRNG(8)
	gr := tinyNet(rng)
	in := tensor.New(1, 1, 8, 8)
	// Perforation on a matmul is invalid.
	fcOp := gr.ApproxOps()[4]
	cfg := approx.Config{fcOp: approx.PerforationKnob(tensorops.PerfRows, 2, 0, tensorops.FP32)}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic applying perforation to matmul")
		}
	}()
	gr.Execute(in, cfg, ExecOptions{})
}

func TestValidateConfig(t *testing.T) {
	rng := tensor.NewRNG(9)
	gr := tinyNet(rng)
	ops := gr.ApproxOps()
	good := approx.Config{ops[0]: approx.SamplingKnob(3, 1, tensorops.FP16)}
	if err := gr.ValidateConfig(good); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := approx.Config{ops[4]: approx.SamplingKnob(3, 1, tensorops.FP16)} // sampling on matmul
	if err := gr.ValidateConfig(bad); err == nil {
		t.Error("sampling knob on matmul should be rejected")
	}
	oob := approx.Config{999: approx.KnobFP16}
	if err := gr.ValidateConfig(oob); err == nil {
		t.Error("out-of-range op should be rejected")
	}
	if err := gr.ValidateConfig(approx.Config{ops[1]: approx.ReduceSamplingKnob(0, tensorops.FP32)}); err != nil {
		t.Errorf("reduction sampling on pool rejected: %v", err)
	}
}

func TestInferShapesMatchExecution(t *testing.T) {
	rng := tensor.NewRNG(10)
	gr := tinyNet(rng)
	in := tensor.New(2, 1, 8, 8)
	rng.FillNormal(in, 0, 1)
	shapes, err := gr.InferShapes(in.Shape())
	if err != nil {
		t.Fatalf("InferShapes: %v", err)
	}
	// Execute and compare every node's shape via a manual sweep.
	out := gr.Execute(in, nil, ExecOptions{})
	if !shapes[gr.Output].Equal(out.Shape()) {
		t.Fatalf("inferred output shape %v, executed %v", shapes[gr.Output], out.Shape())
	}
}

func TestCostsPositiveAndConvDominated(t *testing.T) {
	rng := tensor.NewRNG(11)
	gr := tinyNet(rng)
	costs, err := gr.Costs(tensor.NewShape(1, 1, 8, 8))
	if err != nil {
		t.Fatalf("Costs: %v", err)
	}
	var convNc, otherNc float64
	for _, n := range gr.Nodes {
		c := costs[n.ID]
		if n.Kind != OpInput && n.Kind != OpFlatten && (c.Nc <= 0 || c.Nm <= 0) {
			t.Errorf("node %q has non-positive cost %+v", n.Name, c)
		}
		if n.Kind == OpConv {
			convNc += c.Nc
		} else {
			otherNc += c.Nc
		}
	}
	if convNc <= otherNc {
		t.Errorf("convolutions should dominate compute: conv=%g other=%g", convNc, otherNc)
	}
}

func TestConvCostFormula(t *testing.T) {
	gr := New("c")
	w := tensor.New(2, 3, 3, 3)
	gr.Conv(gr.InputID(), w, nil, tensorops.ConvParams{PadH: 1, PadW: 1}, "conv")
	costs, err := gr.Costs(tensor.NewShape(1, 3, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	// out 1x2x4x4 = 32 elems; MACs = 32*3*3*3 = 864; Nc = 1728.
	if got := costs[1].Nc; got != 1728 {
		t.Errorf("conv Nc = %g, want 1728", got)
	}
	wantNm := float64(1*3*4*4 + 2*3*3*3 + 32)
	if got := costs[1].Nm; got != wantNm {
		t.Errorf("conv Nm = %g, want %g", got, wantNm)
	}
}

func TestTotalMACs(t *testing.T) {
	rng := tensor.NewRNG(12)
	gr := tinyNet(rng)
	in := tensor.NewShape(1, 1, 8, 8)
	full, err := gr.TotalMACs(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	halved, err := gr.TotalMACs(in, func(op int) float64 { return 2 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(halved*2-full) > 1e-6 {
		t.Errorf("rc=2 should halve MACs: full=%g halved=%g", full, halved)
	}
}

func TestValidateCatchesBrokenGraphs(t *testing.T) {
	gr := New("broken")
	gr.Nodes = append(gr.Nodes, &Node{ID: 1, Kind: OpConv, Name: "noweights", Inputs: []int{0}})
	gr.Output = 1
	if err := gr.Validate(); err == nil || !strings.Contains(err.Error(), "weights") {
		t.Errorf("expected missing-weights error, got %v", err)
	}
}

func TestOpClassesAlignWithApproxOps(t *testing.T) {
	gr := tinyNet(tensor.NewRNG(13))
	ops := gr.ApproxOps()
	classes := gr.OpClasses()
	if len(ops) != len(classes) {
		t.Fatalf("len mismatch: %d ops vs %d classes", len(ops), len(classes))
	}
	for i, op := range ops {
		if gr.Nodes[op].Kind.Class() != classes[i] {
			t.Errorf("class mismatch at %d", i)
		}
	}
}

func TestFP16ConfigOnWholeNet(t *testing.T) {
	rng := tensor.NewRNG(14)
	gr := tinyNet(rng)
	in := tensor.New(2, 1, 8, 8)
	rng.FillNormal(in, 0, 1)
	cfg := approx.Config{}
	for _, op := range gr.ApproxOps() {
		cfg[op] = approx.KnobFP16
	}
	base := gr.Execute(in, nil, ExecOptions{})
	half := gr.Execute(in, cfg, ExecOptions{})
	// FP16 should be close to FP32 — small relative error end to end.
	if d := tensor.MSE(half, base); d > 1e-3 {
		t.Errorf("FP16 end-to-end MSE %g too large", d)
	}
}

func TestExecuteFromMatchesFullExecution(t *testing.T) {
	rng := tensor.NewRNG(15)
	gr := tinyNet(rng)
	in := tensor.New(2, 1, 8, 8)
	rng.FillNormal(in, 0, 1)
	base := gr.ExecuteAll(in, nil, ExecOptions{})
	for _, op := range gr.ApproxOps() {
		var kid approx.KnobID
		switch gr.Nodes[op].Kind.Class() {
		case approx.OpConv:
			kid = approx.SamplingKnob(2, 1, tensorops.FP32)
		case approx.OpReduce:
			kid = approx.ReduceSamplingKnob(0, tensorops.FP32)
		default:
			kid = approx.KnobFP16
		}
		cfg := approx.Config{op: kid}
		want := gr.Execute(in, cfg, ExecOptions{})
		got := gr.ExecuteFrom(base, op, cfg, ExecOptions{})
		if !tensor.Equal(got, want, 1e-6) {
			t.Fatalf("ExecuteFrom(op=%d) diverges from full execution", op)
		}
	}
}

func TestExecuteAllBaselineOutputs(t *testing.T) {
	rng := tensor.NewRNG(16)
	gr := tinyNet(rng)
	in := tensor.New(1, 1, 8, 8)
	rng.FillNormal(in, 0, 1)
	vals := gr.ExecuteAll(in, nil, ExecOptions{})
	out := gr.Execute(in, nil, ExecOptions{})
	if !tensor.Equal(vals[gr.Output], out, 0) {
		t.Fatal("ExecuteAll output node disagrees with Execute")
	}
	for i, v := range vals {
		if v == nil {
			t.Fatalf("node %d has no value", i)
		}
	}
}
