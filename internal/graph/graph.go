// Package graph implements the ApproxHPVM-style intermediate
// representation the paper compiles tensor programs into: a dataflow graph
// of predefined tensor operations (convolution, matrix multiplication,
// activations, pooling, normalization, softmax, reductions). Nodes are the
// units of scheduling and approximation — a configuration assigns one
// approximation knob to each approximable node, and the execution engine
// applies the corresponding approximate kernel from internal/tensorops
// (or offloads to the PROMISE simulator for hardware knobs).
package graph

import (
	"fmt"

	"repro/internal/approx"
	"repro/internal/tensor"
	"repro/internal/tensorops"
)

// OpKind identifies the tensor operation a node performs.
type OpKind int

const (
	OpInput OpKind = iota
	OpConv
	OpMatMul
	OpReLU
	OpClippedReLU
	OpTanh
	OpMaxPool
	OpAvgPool
	OpBatchNorm
	OpSoftmax
	OpAdd
	OpReduce
	OpFlatten
	OpAbs
	OpSqrt
	OpMul
	OpNMS
	OpHysteresis
)

var opNames = map[OpKind]string{
	OpInput: "input", OpConv: "conv", OpMatMul: "matmul", OpReLU: "relu",
	OpClippedReLU: "relu_clip", OpTanh: "tanh", OpMaxPool: "maxpool",
	OpAvgPool: "avgpool", OpBatchNorm: "batchnorm", OpSoftmax: "softmax",
	OpAdd: "add", OpReduce: "reduce", OpFlatten: "flatten",
	OpAbs: "abs", OpSqrt: "sqrt", OpMul: "mul", OpNMS: "nms",
	OpHysteresis: "hysteresis",
}

func (k OpKind) String() string { return opNames[k] }

// Class maps an operation kind to the knob class that applies to it.
func (k OpKind) Class() approx.OpClass {
	switch k {
	case OpConv:
		return approx.OpConv
	case OpMatMul:
		return approx.OpMatMul
	case OpMaxPool, OpAvgPool, OpReduce:
		return approx.OpReduce
	default:
		return approx.OpOther
	}
}

// Activation is an activation fused into a convolution or dense node.
// ApproxHPVM counts conv+bias+activation as one tensor operation, which
// keeps this IR's op counts aligned with the paper's Table 1 (e.g.
// ResNet-18 has 22 tensor operations).
type Activation int

const (
	ActNone Activation = iota
	ActReLU
	ActClippedReLU
	ActTanh
)

// Node is one tensor operation in the dataflow graph.
type Node struct {
	ID     int
	Kind   OpKind
	Name   string
	Inputs []int // producer node IDs, in operand order

	// Operation parameters; which fields are meaningful depends on Kind.
	Weight *tensor.Tensor // conv filter (Co,Ci/G,Kh,Kw) or matmul weight (K,M)
	Bias   *tensor.Tensor // optional fused bias (per output channel)
	Act    Activation     // fused activation for conv/matmul
	Conv   tensorops.ConvParams
	Pool   tensorops.PoolParams
	BN     tensorops.BatchNormParams
	Clip   float32
	Reduce tensorops.ReduceKind
	// Hysteresis thresholds.
	ThreshLo, ThreshHi float32
}

// Approximable reports whether the node accepts non-trivial knobs
// (convolutions, matmuls, reductions/pools) as opposed to just the
// precision choice.
func (n *Node) Approximable() bool {
	return n.Kind.Class() != approx.OpOther
}

// Graph is a dataflow DAG of tensor operations. Nodes are stored in
// topological order (the builder only lets a node consume already-created
// nodes), so execution is a single forward sweep.
type Graph struct {
	Name   string
	Nodes  []*Node
	Output int // ID of the node whose value is the program output
	input  int
}

// New returns an empty graph with a single input placeholder node.
func New(name string) *Graph {
	g := &Graph{Name: name}
	in := &Node{ID: 0, Kind: OpInput, Name: "input"}
	g.Nodes = append(g.Nodes, in)
	g.input = 0
	return g
}

// InputID returns the placeholder node fed by the program input.
func (g *Graph) InputID() int { return g.input }

func (g *Graph) add(n *Node) int {
	n.ID = len(g.Nodes)
	for _, in := range n.Inputs {
		if in < 0 || in >= n.ID {
			panic(fmt.Sprintf("graph: node %q consumes out-of-order input %d", n.Name, in))
		}
	}
	if n.Name == "" {
		n.Name = fmt.Sprintf("%s_%d", n.Kind, n.ID)
	}
	g.Nodes = append(g.Nodes, n)
	g.Output = n.ID
	return n.ID
}

// Conv appends a convolution (with optional fused bias; pass nil to omit).
func (g *Graph) Conv(x int, w, b *tensor.Tensor, p tensorops.ConvParams, name string) int {
	return g.add(&Node{Kind: OpConv, Name: name, Inputs: []int{x}, Weight: w, Bias: b, Conv: p.Norm()})
}

// ConvAct appends a convolution with a fused activation.
func (g *Graph) ConvAct(x int, w, b *tensor.Tensor, p tensorops.ConvParams, act Activation, clip float32, name string) int {
	return g.add(&Node{Kind: OpConv, Name: name, Inputs: []int{x}, Weight: w, Bias: b, Conv: p.Norm(), Act: act, Clip: clip})
}

// MatMul appends a dense layer (with optional fused bias).
func (g *Graph) MatMul(x int, w, b *tensor.Tensor, name string) int {
	return g.add(&Node{Kind: OpMatMul, Name: name, Inputs: []int{x}, Weight: w, Bias: b})
}

// MatMulAct appends a dense layer with a fused activation.
func (g *Graph) MatMulAct(x int, w, b *tensor.Tensor, act Activation, clip float32, name string) int {
	return g.add(&Node{Kind: OpMatMul, Name: name, Inputs: []int{x}, Weight: w, Bias: b, Act: act, Clip: clip})
}

// ReLU appends a rectified linear activation.
func (g *Graph) ReLU(x int) int {
	return g.add(&Node{Kind: OpReLU, Inputs: []int{x}})
}

// ClippedReLU appends min(max(0,x),clip).
func (g *Graph) ClippedReLU(x int, clip float32) int {
	return g.add(&Node{Kind: OpClippedReLU, Inputs: []int{x}, Clip: clip})
}

// Tanh appends a tanh activation.
func (g *Graph) Tanh(x int) int {
	return g.add(&Node{Kind: OpTanh, Inputs: []int{x}})
}

// MaxPool appends max pooling.
func (g *Graph) MaxPool(x int, p tensorops.PoolParams) int {
	return g.add(&Node{Kind: OpMaxPool, Inputs: []int{x}, Pool: p.Norm()})
}

// AvgPool appends average pooling.
func (g *Graph) AvgPool(x int, p tensorops.PoolParams) int {
	return g.add(&Node{Kind: OpAvgPool, Inputs: []int{x}, Pool: p.Norm()})
}

// BatchNorm appends inference-time batch normalization.
func (g *Graph) BatchNorm(x int, bp tensorops.BatchNormParams) int {
	return g.add(&Node{Kind: OpBatchNorm, Inputs: []int{x}, BN: bp})
}

// Softmax appends a softmax over (N,K) logits.
func (g *Graph) Softmax(x int) int {
	return g.add(&Node{Kind: OpSoftmax, Inputs: []int{x}})
}

// Add appends an elementwise sum (residual connection).
func (g *Graph) Add(a, b int) int {
	return g.add(&Node{Kind: OpAdd, Inputs: []int{a, b}})
}

// GlobalAvgPool appends a mean reduction over spatial dims: (N,C,H,W)→(N,C).
func (g *Graph) GlobalAvgPool(x int) int {
	return g.add(&Node{Kind: OpReduce, Inputs: []int{x}, Reduce: tensorops.ReduceMean})
}

// Flatten appends a (N,...)→(N,K) reshape.
func (g *Graph) Flatten(x int) int {
	return g.add(&Node{Kind: OpFlatten, Inputs: []int{x}})
}

// Abs appends an elementwise absolute value (a map op).
func (g *Graph) Abs(x int) int {
	return g.add(&Node{Kind: OpAbs, Inputs: []int{x}})
}

// Sqrt appends an elementwise square root (a map op).
func (g *Graph) Sqrt(x int) int {
	return g.add(&Node{Kind: OpSqrt, Inputs: []int{x}})
}

// Mul appends an elementwise product of two tensors (a map op).
func (g *Graph) Mul(a, b int) int {
	return g.add(&Node{Kind: OpMul, Inputs: []int{a, b}})
}

// NMS appends Canny non-maximum suppression over (magnitude, gx, gy).
func (g *Graph) NMS(mag, gx, gy int) int {
	return g.add(&Node{Kind: OpNMS, Inputs: []int{mag, gx, gy}})
}

// Hysteresis appends Canny double-threshold edge linking with the given
// low and high thresholds.
func (g *Graph) Hysteresis(x int, lo, hi float32) int {
	return g.add(&Node{Kind: OpHysteresis, Inputs: []int{x}, ThreshLo: lo, ThreshHi: hi})
}

// ApproxOps returns the IDs of nodes eligible for non-trivial
// approximation knobs, in topological order. These IDs are the domain of
// a Config.
func (g *Graph) ApproxOps() []int {
	var ids []int
	for _, n := range g.Nodes {
		if n.Approximable() {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// OpClasses returns the knob class of each approximable op, aligned with
// ApproxOps; it feeds the search-space computation of Table 1.
func (g *Graph) OpClasses() []approx.OpClass {
	var cs []approx.OpClass
	for _, n := range g.Nodes {
		if n.Approximable() {
			cs = append(cs, n.Kind.Class())
		}
	}
	return cs
}

// LayerCount counts the "layers" of Table 1: convolutions and dense
// layers.
func (g *Graph) LayerCount() int {
	c := 0
	for _, n := range g.Nodes {
		if n.Kind == OpConv || n.Kind == OpMatMul {
			c++
		}
	}
	return c
}

// Validate checks structural invariants: node IDs match positions, inputs
// are topologically ordered, weights exist where required, and the output
// node exists.
func (g *Graph) Validate() error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("graph %q: empty", g.Name)
	}
	for i, n := range g.Nodes {
		if n.ID != i {
			return fmt.Errorf("graph %q: node %d has ID %d", g.Name, i, n.ID)
		}
		for _, in := range n.Inputs {
			if in < 0 || in >= i {
				return fmt.Errorf("graph %q: node %q input %d breaks topological order", g.Name, n.Name, in)
			}
		}
		switch n.Kind {
		case OpConv, OpMatMul:
			if n.Weight == nil {
				return fmt.Errorf("graph %q: node %q lacks weights", g.Name, n.Name)
			}
		case OpAdd:
			if len(n.Inputs) != 2 {
				return fmt.Errorf("graph %q: add node %q needs 2 inputs", g.Name, n.Name)
			}
		case OpInput:
			if i != 0 {
				return fmt.Errorf("graph %q: interior input node %d", g.Name, i)
			}
		}
	}
	if g.Output < 0 || g.Output >= len(g.Nodes) {
		return fmt.Errorf("graph %q: bad output id %d", g.Name, g.Output)
	}
	return nil
}
