package graph

import (
	"fmt"

	"repro/internal/tensor"
)

// Batch assembly for the serving path: concurrent inference requests
// arrive as independent tensors (a single item, or a small batch each)
// and are coalesced into one contiguous batch so a single graph
// execution amortizes weight-panel reuse and exploits the batch-sharded
// executor. Because every operator in the IR computes batch elements
// independently (the same invariant executeSharded relies on), running
// the concatenated batch and splitting the output along the leading axis
// is bit-identical to executing each request alone —
// TestConcatSplitMatchesIndividual pins this.

// ConcatBatch coalesces request inputs into one batch tensor along the
// leading axis. Inputs may carry heterogeneous leading (batch) sizes but
// must agree on the per-item dimensions; a rank-(n-1) tensor matching
// the item dimensions exactly is promoted to a single item. The returned
// sizes slice records each request's item count, in order, for
// SplitBatch to undo the concatenation.
func ConcatBatch(inputs []*tensor.Tensor) (*tensor.Tensor, []int, error) {
	if len(inputs) == 0 {
		return nil, nil, fmt.Errorf("graph: concat of zero inputs")
	}
	first := inputs[0]
	if first == nil || first.Rank() < 1 {
		return nil, nil, fmt.Errorf("graph: concat input 0 is empty")
	}
	item := first.Shape().Dims()[1:]
	sizes := make([]int, len(inputs))
	total := 0
	for i, in := range inputs {
		if in == nil || in.Rank() < 1 {
			return nil, nil, fmt.Errorf("graph: concat input %d is empty", i)
		}
		dims := in.Shape().Dims()
		switch {
		case sameDims(dims[1:], item):
			sizes[i] = dims[0]
		case sameDims(dims, item):
			// Single item without an explicit batch axis.
			sizes[i] = 1
		default:
			return nil, nil, fmt.Errorf("graph: concat input %d has item shape %v, want %v", i, dims, item)
		}
		total += sizes[i]
	}
	if len(inputs) == 1 && sizes[0] == first.Dim(0) && first.Rank() >= 2 {
		// Already a well-formed batch: no copy needed.
		return first, sizes, nil
	}
	out := tensor.New(append([]int{total}, item...)...)
	od := out.Data()
	off := 0
	for _, in := range inputs {
		off += copy(od[off:], in.Data())
	}
	return out, sizes, nil
}

// SplitBatch undoes ConcatBatch on the execution output: it slices the
// leading axis back into per-request tensors of the recorded item
// counts. The output's leading dimension must equal the sum of sizes
// (guaranteed for the IR's operators, whose outputs preserve the batch
// axis). The returned tensors are fresh copies, safe to hand to
// concurrent responders after the batch buffer is reused.
func SplitBatch(out *tensor.Tensor, sizes []int) ([]*tensor.Tensor, error) {
	if out == nil || out.Rank() < 1 {
		return nil, fmt.Errorf("graph: split of an empty output")
	}
	total := 0
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("graph: bad split size %d", s)
		}
		total += s
	}
	if out.Dim(0) != total {
		return nil, fmt.Errorf("graph: output batch %d does not cover request sizes summing to %d", out.Dim(0), total)
	}
	per := out.Elems() / out.Dim(0)
	itemDims := out.Shape().Dims()[1:]
	od := out.Data()
	parts := make([]*tensor.Tensor, len(sizes))
	off := 0
	for i, s := range sizes {
		data := make([]float32, s*per)
		copy(data, od[off*per:(off+s)*per])
		parts[i] = tensor.FromSlice(data, append([]int{s}, itemDims...)...)
		off += s
	}
	return parts, nil
}

func sameDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
