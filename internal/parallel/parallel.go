// Package parallel provides the small data-parallel looping primitives the
// tensor kernels are built on. Work is chunked across GOMAXPROCS workers;
// on a single-core host the loops degrade gracefully to sequential
// execution with negligible overhead.
//
// All loops draw extra workers from one process-wide token pool sized at
// GOMAXPROCS-1. The calling goroutine always executes the final chunk
// itself (saving one goroutine spawn + handoff per call on the hottest
// dispatch path), and a loop that finds the pool empty — typically because
// it is nested inside another parallel loop, e.g. a tensor kernel invoked
// from a batched config evaluation — runs its remaining chunks inline
// instead of spawning. Nested parallelism therefore cannot multiply worker
// counts: the process never runs more than ~GOMAXPROCS compute goroutines
// regardless of nesting depth.
package parallel

import (
	"runtime"
	"sync"
)

// workerTokens is the process-wide pool of spawnable extra workers. The
// calling goroutine of every loop counts as one worker, so the pool holds
// GOMAXPROCS-1 tokens (empty on a single-core host). Sized once at
// startup; later GOMAXPROCS changes only affect per-call chunk counts.
var workerTokens = func() chan struct{} {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 0 {
		n = 0
	}
	ch := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		ch <- struct{}{}
	}
	return ch
}()

// Workers returns the target parallel width of this process (GOMAXPROCS),
// the natural batch size for concurrent config evaluation.
func Workers() int { return runtime.GOMAXPROCS(0) }

// Serial reports whether the loop helpers would run everything on the
// calling goroutine anyway (single-proc process). Hot kernels branch on it
// to call their loop body directly: a closure passed to For/ForChunked
// escapes to the heap at every call site, and on the GEMM dispatch path
// that is one allocation per call.
func Serial() bool { return runtime.GOMAXPROCS(0) <= 1 }

// Available reports how many extra workers the token pool could hand out
// right now. It is a racy snapshot, not a reservation — callers use it as
// a heuristic (graph batch sharding skips the split when the process is
// already saturated by an outer parallel loop, where the shards would all
// run inline anyway).
func Available() int { return len(workerTokens) }

// For runs fn(i) for every i in [0,n), splitting the index space into
// contiguous chunks executed by up to GOMAXPROCS goroutines. It returns
// once every iteration has completed. fn must be safe to call concurrently
// for distinct i.
func For(n int, fn func(i int)) {
	ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForChunked runs fn(lo,hi) over a partition of [0,n) into contiguous
// half-open chunks, one chunk per worker. Chunking amortizes dispatch
// overhead when the per-index work is small. The final chunk always runs
// on the calling goroutine; earlier chunks are spawned only while the
// worker-token pool has capacity and run inline otherwise, so nested
// ForChunked calls degrade to sequential execution instead of multiplying
// goroutines.
func ForChunked(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	lo := 0
	for ; lo+chunk < n; lo += chunk {
		select {
		case <-workerTokens:
			wg.Add(1)
			go func(lo, hi int) {
				defer func() {
					workerTokens <- struct{}{}
					wg.Done()
				}()
				fn(lo, hi)
			}(lo, lo+chunk)
		default:
			// Pool exhausted (nested loop or saturated host): run inline.
			fn(lo, lo+chunk)
		}
	}
	fn(lo, n)
	wg.Wait()
}

// Map runs fn over [0,n) and collects the results in order.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = fn(i) })
	return out
}
