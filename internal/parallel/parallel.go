// Package parallel provides the small data-parallel looping primitives the
// tensor kernels are built on. Work is chunked across GOMAXPROCS workers;
// on a single-core host the loops degrade gracefully to sequential
// execution with negligible overhead.
package parallel

import (
	"runtime"
	"sync"
)

// For runs fn(i) for every i in [0,n), splitting the index space into
// contiguous chunks executed by up to GOMAXPROCS goroutines. It returns
// once every iteration has completed. fn must be safe to call concurrently
// for distinct i.
func For(n int, fn func(i int)) {
	ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForChunked runs fn(lo,hi) over a partition of [0,n) into contiguous
// half-open chunks, one chunk per worker. Chunking amortizes dispatch
// overhead when the per-index work is small.
func ForChunked(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Map runs fn over [0,n) and collects the results in order.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = fn(i) })
	return out
}
