package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	const n = 1000
	var hits [n]int32
	For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times, want exactly once", i, h)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	ran := false
	For(0, func(i int) { ran = true })
	For(-5, func(i int) { ran = true })
	if ran {
		t.Fatal("For must not run any iteration for n <= 0")
	}
}

func TestForChunkedPartition(t *testing.T) {
	// Property: chunks form a partition of [0,n) for any n.
	f := func(n uint8) bool {
		total := int(n)
		var count int64
		ForChunked(total, func(lo, hi int) {
			if lo < 0 || hi > total || lo > hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, total)
			}
			atomic.AddInt64(&count, int64(hi-lo))
		})
		return int(count) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMapOrdering(t *testing.T) {
	got := Map(10, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForChunkedRunsWithDrainedTokenPool(t *testing.T) {
	// Drain the worker-token pool to simulate a fully saturated host (the
	// state every nested loop observes). ForChunked must fall back to
	// inline execution — covering all indices, never blocking.
	var drained []struct{}
	for {
		select {
		case tok := <-workerTokens:
			_ = tok
			drained = append(drained, struct{}{})
			continue
		default:
		}
		break
	}
	defer func() {
		for range drained {
			workerTokens <- struct{}{}
		}
	}()
	const n = 257
	var hits [n]int32
	ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times with drained pool, want exactly once", i, h)
		}
	}
}

func TestTokenPoolRestoredAfterLoops(t *testing.T) {
	for r := 0; r < 50; r++ {
		For(64, func(i int) {})
	}
	if got, want := len(workerTokens), cap(workerTokens); got != want {
		t.Fatalf("worker-token pool leaked: %d of %d tokens after loops", got, want)
	}
}

func TestNestedParallelismBounded(t *testing.T) {
	// A loop nested inside another loop must not multiply worker counts:
	// total concurrently-running chunk bodies stay within the caller count
	// plus the token pool, not outer×inner.
	bound := int32(2*runtime.GOMAXPROCS(0) + 1)
	var cur, peak int32
	enter := func() {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
	}
	For(32, func(i int) {
		enter()
		For(32, func(j int) {
			enter()
			atomic.AddInt32(&cur, -1)
		})
		atomic.AddInt32(&cur, -1)
	})
	if peak > bound {
		t.Fatalf("nested loops reached %d concurrent bodies, bound %d", peak, bound)
	}
	if got, want := len(workerTokens), cap(workerTokens); got != want {
		t.Fatalf("worker-token pool leaked: %d of %d tokens", got, want)
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", Workers())
	}
}

func TestForUsesMultipleGoroutinesWhenAvailable(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-proc host: parallel dispatch degenerates to sequential")
	}
	var peak int32
	var cur int32
	For(64, func(i int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		atomic.AddInt32(&cur, -1)
	})
	if peak < 1 {
		t.Fatal("no iterations observed")
	}
}
