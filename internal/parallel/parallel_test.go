package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	const n = 1000
	var hits [n]int32
	For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times, want exactly once", i, h)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	ran := false
	For(0, func(i int) { ran = true })
	For(-5, func(i int) { ran = true })
	if ran {
		t.Fatal("For must not run any iteration for n <= 0")
	}
}

func TestForChunkedPartition(t *testing.T) {
	// Property: chunks form a partition of [0,n) for any n.
	f := func(n uint8) bool {
		total := int(n)
		var count int64
		ForChunked(total, func(lo, hi int) {
			if lo < 0 || hi > total || lo > hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, total)
			}
			atomic.AddInt64(&count, int64(hi-lo))
		})
		return int(count) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMapOrdering(t *testing.T) {
	got := Map(10, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForUsesMultipleGoroutinesWhenAvailable(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-proc host: parallel dispatch degenerates to sequential")
	}
	var peak int32
	var cur int32
	For(64, func(i int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		atomic.AddInt32(&cur, -1)
	})
	if peak < 1 {
		t.Fatal("no iterations observed")
	}
}
