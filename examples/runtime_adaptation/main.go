// Runtime adaptation example (§5, §7.5): ship a tradeoff curve with the
// application, then let the runtime controller hold the original batch
// time while the GPU is forced down its DVFS ladder, switching
// approximation knobs on the fly.
package main

import (
	"fmt"
	"log"

	approxtuner "repro"
	"repro/internal/device"
	"repro/internal/models"
)

func main() {
	b := models.MustBuild("alexnet2", models.Scale{Images: 64, Width: 0.25, Seed: 9})
	calib, test := b.Dataset.Split()
	app, err := approxtuner.NewCNNApp(b.Model.Graph, calib.Images, calib.Labels, test.Images, test.Labels)
	if err != nil {
		log.Fatal(err)
	}

	spec := approxtuner.TuneSpec{MaxQoSLoss: 7, MaxIters: 2000, NCalibrate: 12}
	dev, err := app.TuneDevelopmentTime(spec)
	if err != nil {
		log.Fatal(err)
	}
	gpu := approxtuner.TX2GPU()
	inst, err := app.RefineOnDevice(dev.Curve, gpu, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final curve has %d points (speedups %.2fx–%.2fx)\n",
		inst.Curve.Len(), inst.Curve.Points[0].Perf,
		inst.Curve.Points[inst.Curve.Len()-1].Perf)

	// The performance goal: the exact configuration's batch time at the
	// highest frequency.
	costs := app.Program().Costs()
	target := gpu.Time(costs, nil)
	rt, err := app.NewRuntime(inst.Curve, approxtuner.PolicyAverage, target, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	fmt.Printf("\n%-10s %-12s %-12s %-22s\n", "freq(MHz)", "batch-time", "vs target", "active config")
	for _, f := range device.Freqs {
		gpu.SetFrequencyMHz(f)
		// Run a few batches at this frequency; the monitor reacts after
		// each invocation.
		var last float64
		for i := 0; i < 6; i++ {
			bt := gpu.Time(costs, rt.Current())
			rt.RecordInvocation(bt)
			last = bt
		}
		fmt.Printf("%-10.0f %-12.2e %-12.2f %-22s\n",
			f, last, last/target, approxtuner.DescribeConfig(rt.Current()))
	}
	fmt.Printf("\nconfiguration switches: %d (switching cost is negligible —\n", rt.Switches())
	fmt.Println("knob settings are just numeric parameters of the tensor ops)")
}
