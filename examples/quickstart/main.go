// Quickstart: build a small CNN with the dataflow-graph IR, wrap it in an
// App, run all three tuning phases — development-time predictive tuning
// with a 4-percentage-point accuracy budget, install-time refinement on
// the TX2 GPU model, and a short runtime-adaptation episode — and inspect
// the shipped tradeoff curve.
//
// Observability: -trace out.jsonl exports a JSONL span trace covering the
// three phases, -metrics-addr :8090 serves live /metrics and
// /debug/pprof, and -v prints extra diagnostics.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	approxtuner "repro"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/tensorops"
)

func main() {
	oc := obs.RegisterFlags(nil)
	flag.Parse()
	if err := oc.Activate(os.Stderr); err != nil {
		log.Fatal(err)
	}
	defer oc.Close()
	// 1. Build a small CNN as an ApproxHPVM-style dataflow graph. Every
	// convolution / dense / pooling node becomes a tunable operation.
	rng := tensor.NewRNG(7)
	g := graph.New("quickstart")
	w1 := tensor.New(16, 1, 5, 5)
	rng.FillHe(w1, 25)
	c1 := g.ConvAct(g.InputID(), w1, nil, tensorops.ConvParams{PadH: 2, PadW: 2}, graph.ActReLU, 0, "conv1")
	p1 := g.MaxPool(c1, tensorops.PoolParams{KH: 2, KW: 2})
	w2 := tensor.New(32, 16, 5, 5)
	rng.FillHe(w2, 16*25)
	c2 := g.ConvAct(p1, w2, nil, tensorops.ConvParams{PadH: 2, PadW: 2}, graph.ActReLU, 0, "conv2")
	p2 := g.MaxPool(c2, tensorops.PoolParams{KH: 2, KW: 2})
	fl := g.Flatten(p2)
	wf := tensor.New(32*7*7, 10)
	rng.FillXavier(wf, 32*7*7, 10)
	fc := g.MatMul(fl, wf, nil, "fc")
	g.Softmax(fc)

	// Normalize the synthetic weights (the builders in internal/models do
	// this automatically).
	probe := datasets.MNISTLike(8, 99)
	g.StandardizeWeights(probe.Images)

	// 2. Data: a synthetic MNIST-like set with labels planted from the
	// network's own baseline at 98% accuracy.
	ds := datasets.MNISTLike(64, 3)
	m := &models.Model{Graph: g, C: 1, H: 28, W: 28, Classes: 10}
	baseline := models.PlantLabels(m, ds, 98.0, 32, 4)
	calib, test := ds.Split()
	fmt.Printf("network: %d layers, %d tunable ops, baseline accuracy %.2f%%\n",
		g.LayerCount(), len(g.ApproxOps()), baseline)

	// 3. Tune: only the end-to-end quality budget is required.
	app, err := approxtuner.NewCNNApp(g, calib.Images, calib.Labels, test.Images, test.Labels)
	if err != nil {
		log.Fatal(err)
	}
	res, err := app.TuneDevelopmentTime(approxtuner.TuneSpec{
		MaxQoSLoss: 4,
		MaxIters:   2000,
		Model:      approxtuner.Pi1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the shipped curve and measure the winners on the device
	// models.
	gpu := approxtuner.TX2GPU()
	fmt.Printf("\nshipped tradeoff curve (%d points):\n", res.Curve.Len())
	for _, pt := range res.Curve.Points {
		fmt.Printf("  calib QoS %6.2f%%  predicted %4.2fx  gpu %4.2fx  %s\n",
			pt.QoS, pt.Perf, app.MeasureSpeedup(pt.Config, gpu),
			approxtuner.DescribeConfig(pt.Config))
	}
	if best, ok := res.Curve.Best(app.BaselineQoS - 4); ok {
		fmt.Printf("\nbest within budget: %.2fx on GPU at test accuracy %.2f%%\n",
			app.MeasureSpeedup(best.Config, gpu), app.Evaluate(best.Config))
	}
	fmt.Printf("tuning took %v (%d search iterations, α=%.3f)\n",
		res.Stats.Total.Round(1e6), res.Stats.Iterations, res.Stats.Alpha)

	// 5. Install time: re-measure the shipped curve on the device model,
	// dropping points whose real QoS misses the budget.
	inst, err := app.RefineOnDevice(res.Curve, gpu, approxtuner.TuneSpec{MaxQoSLoss: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninstall-time refined curve: %d points\n", inst.Curve.Len())

	// 6. Runtime: hold the exact configuration's batch time while the GPU
	// drops down one DVFS step.
	costs := app.Program().Costs()
	target := gpu.Time(costs, nil)
	rt, err := app.NewRuntime(inst.Curve, approxtuner.PolicyAverage, target, 1)
	if err != nil {
		log.Fatal(err)
	}
	gpu.SetFrequencyMHz(852)
	for i := 0; i < 6; i++ {
		rt.RecordInvocation(gpu.Time(costs, rt.Current()))
	}
	fmt.Printf("runtime at 852 MHz: %d config switches, active %s\n",
		rt.Switches(), approxtuner.DescribeConfig(rt.Current()))
	rt.Close()
}
