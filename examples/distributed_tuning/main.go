// Distributed install-time tuning example (§4): edge devices collect
// PROMISE voltage-knob QoS profiles on disjoint calibration shards; a
// central server merges the profiles with the shipped software profiles,
// runs predictive tuning over the combined knob space, scatters the
// shortlist for validation, and unions the per-edge Pareto sets into the
// final energy-optimized curve.
package main

import (
	"fmt"
	"log"

	approxtuner "repro"
	"repro/internal/approx"
	"repro/internal/models"
)

func main() {
	b := models.MustBuild("alexnet", models.Scale{Images: 64, Width: 0.25, Seed: 13})
	calib, test := b.Dataset.Split()
	app, err := approxtuner.NewCNNApp(b.Model.Graph, calib.Images, calib.Labels, test.Images, test.Labels)
	if err != nil {
		log.Fatal(err)
	}

	spec := approxtuner.TuneSpec{MaxQoSLoss: 3, MaxIters: 2500}
	fmt.Println("development time: hardware-independent tuning...")
	dev, err := app.TuneDevelopmentTime(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  shipped curve: %d points\n", dev.Curve.Len())

	gpu := approxtuner.TX2GPU()
	const nEdge = 8
	fmt.Printf("install time: distributed predictive tuning over PROMISE knobs (%d edge devices)...\n", nEdge)
	inst, err := app.TuneInstallTime(dev, gpu, spec, approxtuner.MinimizeEnergy, nEdge)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  edge profile phase: %v   server autotuning: %v\n",
		inst.Stats.EdgeProfileTime.Round(1e6), inst.Stats.ServerTuneTime.Round(1e6))
	fmt.Printf("  final curve: %d points\n\n", inst.Curve.Len())

	for _, pt := range inst.Curve.Points {
		promiseOps := 0
		for _, kid := range pt.Config {
			if approx.MustLookup(kid).Kind == approx.KindPromise {
				promiseOps++
			}
		}
		fmt.Printf("  energy reduction %5.2fx  calib QoS %6.2f%%  PROMISE ops %d  %s\n",
			pt.Perf, pt.QoS, promiseOps, approxtuner.DescribeConfig(pt.Config))
	}
	if best, ok := inst.Curve.Best(app.BaselineQoS - 3); ok {
		fmt.Printf("\nbest within budget: %.2fx energy reduction at test accuracy %.2f%%\n",
			best.Perf, app.Evaluate(best.Config))
	}
}
