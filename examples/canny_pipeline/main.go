// Canny pipeline example: tune the combined CNN + image-processing
// benchmark of the paper's §7.6 — an AlexNet2 classifier routing five of
// ten classes into Canny edge detection — under a two-component QoS
// (classification accuracy, edge-map PSNR). Only the Π2 predictor applies
// because the classifier makes the output size configuration-dependent.
package main

import (
	"fmt"
	"log"

	approxtuner "repro"
	"repro/internal/canny"
	"repro/internal/core"
	"repro/internal/models"
)

func main() {
	b := models.MustBuild("alexnet2", models.Scale{Images: 32, Width: 0.25, Seed: 5})
	fmt.Printf("CNN baseline accuracy: %.2f%%\n", b.BaselineAcc)

	// Threshold pair: at most 3pp accuracy loss (relative to the
	// calibration-set baseline) AND PSNR ≥ 25 dB on the routed images'
	// edge maps.
	comp, err := canny.NewComposite(b, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	calibAcc, _ := comp.BaselinePair(core.Calib)
	comp.SetThresholds(calibAcc-3, 25)
	app, err := approxtuner.NewApp(comp)
	if err != nil {
		log.Fatal(err)
	}

	// The composite's QoS scalar is the minimum threshold margin, so the
	// quality budget is "stay feasible": MaxQoSLoss = baseline margin.
	res, err := app.TuneDevelopmentTime(approxtuner.TuneSpec{
		MaxQoSLoss: app.BaselineQoS, // QoSMin = 0: both thresholds must hold
		Model:      approxtuner.Pi2,
		MaxIters:   1500,
	})
	if err != nil {
		log.Fatal(err)
	}

	gpu := approxtuner.TX2GPU()
	fmt.Printf("\nfeasible configurations found: %d\n", res.Curve.Len())
	for _, pt := range res.Curve.Points {
		out := comp.Run(pt.Config, core.Calib, nil)
		acc, psnr := comp.Decode(core.Calib, out)
		fmt.Printf("  gpu %4.2fx  accuracy %6.2f%%  psnr %5.1f dB  %s\n",
			app.MeasureSpeedup(pt.Config, gpu), acc, psnr,
			approxtuner.DescribeConfig(pt.Config))
	}
	if best, ok := res.Curve.Best(0); ok {
		out := comp.Run(best.Config, core.Test, nil)
		acc, psnr := comp.Decode(core.Test, out)
		fmt.Printf("\nbest feasible: %.2fx on GPU; test accuracy %.2f%%, test PSNR %.1f dB\n",
			app.MeasureSpeedup(best.Config, gpu), acc, psnr)
	}
}
