// Model-from-JSON example: compile a network from a declarative JSON
// description (the stand-in for the paper's Keras/PyTorch frontends),
// tune it twice — once FP32-only, once with FP16 knobs — and package the
// two curves into the dual-curve artifact the paper ships with the binary
// (§3.5). The bundle then picks the right curve per device.
package main

import (
	"fmt"
	"log"

	approxtuner "repro"
	"repro/internal/datasets"
	"repro/internal/models"
)

const spec = `{
  "name": "tiny_vgg",
  "input": {"channels": 3, "height": 32, "width": 32},
  "classes": 10,
  "seed": 21,
  "width_mult": 0.25,
  "layers": [
    {"type": "conv", "filters": 64, "kernel": 3, "pad": 1, "activation": "relu"},
    {"type": "conv", "filters": 64, "kernel": 3, "pad": 1, "activation": "relu"},
    {"type": "maxpool", "kernel": 2},
    {"type": "conv", "filters": 128, "kernel": 3, "pad": 1, "activation": "relu"},
    {"type": "maxpool", "kernel": 2},
    {"type": "global_avg_pool"},
    {"type": "dense", "units": 10},
    {"type": "softmax"}
  ]
}`

func main() {
	g, classes, err := approxtuner.CompileModelJSON([]byte(spec))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: %d layers, %d tunable ops, %d classes\n",
		g.Name, g.LayerCount(), len(g.ApproxOps()), classes)

	// Synthetic data with labels planted at 85% baseline accuracy.
	ds := datasets.CIFARLike(64, classes, 22)
	m := &models.Model{Graph: g, C: 3, H: 32, W: 32, Classes: classes}
	models.PlantLabels(m, ds, 85, 32, 23)
	calib, test := ds.Split()

	app, err := approxtuner.NewCNNApp(g, calib.Images, calib.Labels, test.Images, test.Labels)
	if err != nil {
		log.Fatal(err)
	}

	// Two development-time runs: FP16 availability is unknown at this
	// stage, so ship both curves.
	base := approxtuner.TuneSpec{MaxQoSLoss: 7, MaxIters: 1500, NCalibrate: 10}
	fp32Spec := base
	fp32Spec.DisableFP16 = true
	fp32Res, err := app.TuneDevelopmentTime(fp32Spec)
	if err != nil {
		log.Fatal(err)
	}
	fp16Res, err := app.TuneDevelopmentTime(base)
	if err != nil {
		log.Fatal(err)
	}

	bundle, err := app.ShipBundle(fp32Res, fp16Res)
	if err != nil {
		log.Fatal(err)
	}
	data, err := bundle.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shipped bundle: %d bytes (FP32 curve %d points, FP16 curve %d points)\n",
		len(data), bundle.FP32.Len(), bundle.FP16.Len())

	// At install time each device loads the bundle and selects its curve.
	loaded, err := approxtuner.LoadBundle(data)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range []*approxtuner.Device{approxtuner.TX2GPU(), approxtuner.TX2CPU()} {
		curve := loaded.Select(d)
		which := "FP32"
		if curve == loaded.FP16 {
			which = "FP16"
		}
		inst, err := app.RefineOnDevice(curve, d, base)
		if err != nil {
			log.Fatal(err)
		}
		best := "(baseline only)"
		if pt, ok := inst.Curve.Best(app.BaselineQoS - 7); ok {
			best = fmt.Sprintf("%.2fx via %s", pt.Perf, approxtuner.DescribeConfig(pt.Config))
		}
		fmt.Printf("  %-14s → %s curve, refined to %d points, best %s\n",
			d.Name, which, inst.Curve.Len(), best)
	}
}
