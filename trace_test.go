package approxtuner

import (
	"os"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestSampleTracePhases guards the committed sample trace
// (results/sample_trace.jsonl, recorded from examples/quickstart with
// -trace): its span tree must contain the three tuning phases in
// dev → install → runtime order, with graph executions (and their
// per-node kernel spans) nested under the phase spans.
func TestSampleTracePhases(t *testing.T) {
	f, err := os.Open("results/sample_trace.jsonl")
	if err != nil {
		t.Fatalf("open sample trace: %v", err)
	}
	defer f.Close()
	records, err := obs.ReadTrace(f)
	if err != nil {
		t.Fatalf("parse sample trace: %v", err)
	}
	roots := obs.BuildTree(records)

	// Roots are ordered by start time; collect the phase roots.
	var phases []*obs.TreeNode
	for _, r := range roots {
		if strings.HasPrefix(r.Name, "phase:") {
			phases = append(phases, r)
		}
	}
	want := []string{"phase:devtime", "phase:install", "phase:runtime"}
	if len(phases) != len(want) {
		t.Fatalf("got %d phase roots, want %d", len(phases), len(want))
	}
	for i, w := range want {
		if phases[i].Name != w {
			t.Errorf("phase %d = %q, want %q", i, phases[i].Name, w)
		}
	}
	for i := 1; i < len(phases); i++ {
		if phases[i].Start < phases[i-1].Start {
			t.Errorf("%s starts before %s", phases[i].Name, phases[i-1].Name)
		}
	}

	// Graph executions and per-node kernel spans must nest under the
	// development-time phase (the profile/validate steps run the graph).
	var graphs, nodes int
	phases[0].Walk(func(n *obs.TreeNode, depth int) {
		if strings.HasPrefix(n.Name, "graph:") && depth > 0 {
			graphs++
		}
		if strings.HasPrefix(n.Name, "node:") && depth > 1 {
			nodes++
		}
	})
	if graphs == 0 {
		t.Error("no graph execution spans nested under phase:devtime")
	}
	if nodes == 0 {
		t.Error("no per-node kernel spans nested under phase:devtime")
	}

	// The pack-once prepass must be recorded under the development-time
	// phase, before tuning starts executing the graph: the cache is what
	// makes the thousands of candidate executions start warm.
	var packIdx, firstGraphIdx, idx int
	packIdx, firstGraphIdx = -1, -1
	phases[0].Walk(func(n *obs.TreeNode, depth int) {
		if strings.HasPrefix(n.Name, "pack_cache:") && packIdx < 0 {
			packIdx = idx
		}
		if strings.HasPrefix(n.Name, "graph:") && firstGraphIdx < 0 {
			firstGraphIdx = idx
		}
		idx++
	})
	if packIdx < 0 {
		t.Error("no pack_cache span nested under phase:devtime")
	} else if firstGraphIdx >= 0 && packIdx > firstGraphIdx {
		t.Error("pack_cache prepass recorded after the first graph execution")
	}
}
